"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_figure_commands_exist(self):
        parser = build_parser()
        for command in ["datasets", "figure2a", "figure2b", "figure3a", "figure3b", "figure3c", "figure3d", "bias"]:
            args = parser.parse_args([command] if command in ("datasets",) else [command])
            assert callable(args.handler)

    def test_figure2a_accepts_sketch_sizes(self):
        args = build_parser().parse_args(["figure2a", "--sketch-sizes", "5", "10"])
        assert args.sketch_sizes == [5, 10]

    def test_scale_and_seed_options(self):
        args = build_parser().parse_args(["figure3a", "--scale", "0.2", "--seed", "7"])
        assert args.scale == 0.2
        assert args.seed == 7


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "youtube" in out and "orkut" in out

    def test_datasets_csv(self, capsys):
        assert main(["datasets", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("dataset,")

    def test_figure2a_small(self, capsys):
        code = main(["figure2a", "--scale", "0.02", "--sketch-sizes", "4", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out
        for method in ("VOS", "OPH", "MinHash", "RP"):
            assert method in out

    def test_figure3a_small(self, capsys):
        code = main(
            [
                "figure3a",
                "--scale", "0.05",
                "--registers", "8",
                "--top-users", "15",
                "--max-pairs", "30",
                "--checkpoints", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AAPE" in out
        assert "VOS" in out

    def test_bias_command(self, capsys):
        code = main(["bias", "--rates", "0.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bias(VOS)" in out

    def test_search_command(self, capsys):
        code = main(
            [
                "search",
                "--dataset", "youtube",
                "--scale", "0.1",
                "--registers", "8",
                "--top-users", "10",
                "-k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 similar pairs" in out
        assert "J (VOS)" in out and "J (exact)" in out

    def test_search_command_with_other_method(self, capsys):
        code = main(
            [
                "search",
                "--dataset", "youtube",
                "--scale", "0.1",
                "--method", "MinHash",
                "--registers", "8",
                "--top-users", "8",
                "-k", "2",
            ]
        )
        assert code == 0
        assert "MinHash" in capsys.readouterr().out


class TestServiceCommands:
    """End-to-end ``repro ingest`` -> snapshot -> ``repro topk`` round trip."""

    @pytest.fixture()
    def stream_file(self, tmp_path, small_dynamic_stream):
        from repro.streams.io import write_stream

        path = tmp_path / "stream.txt"
        write_stream(small_dynamic_stream.prefix(2000), path)
        return path

    def test_ingest_then_topk(self, stream_file, tmp_path, capsys, small_dynamic_stream):
        snapshot = tmp_path / "state.vos"
        code = main(
            [
                "ingest",
                "--stream", str(stream_file),
                "--snapshot", str(snapshot),
                "--shards", "4",
                "--registers", "8",
                "--batch-size", "512",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested 2000 elements" in out
        assert snapshot.exists()

        user = sorted(small_dynamic_stream.prefix(2000).users())[0]
        code = main(["topk", "--snapshot", str(snapshot), "--user", str(user), "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"similar to user {user}" in out
        assert "jaccard" in out

    def test_topk_csv(self, stream_file, tmp_path, capsys, small_dynamic_stream):
        snapshot = tmp_path / "state.vos"
        assert main(["ingest", "--stream", str(stream_file), "--snapshot", str(snapshot)]) == 0
        capsys.readouterr()
        user = sorted(small_dynamic_stream.prefix(2000).users())[0]
        code = main(
            ["topk", "--snapshot", str(snapshot), "--user", str(user), "-k", "2", "--csv"]
        )
        assert code == 0
        assert capsys.readouterr().out.splitlines()[1].startswith("user,")

    def test_topk_unknown_user_exits_2(self, stream_file, tmp_path, capsys):
        snapshot = tmp_path / "state.vos"
        assert main(["ingest", "--stream", str(stream_file), "--snapshot", str(snapshot)]) == 0
        code = main(["topk", "--snapshot", str(snapshot), "--user", "123456789", "-k", "3"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_topk_missing_snapshot_exits_2(self, tmp_path, capsys):
        code = main(
            ["topk", "--snapshot", str(tmp_path / "nope.vos"), "--user", "1", "-k", "3"]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err


class TestConvertAndParallelIngest:
    """``repro convert`` and the ingest ``--workers`` / ``--format`` flags."""

    @pytest.fixture()
    def text_stream_file(self, tmp_path, small_dynamic_stream):
        from repro.streams.io import write_stream

        path = tmp_path / "stream.txt"
        write_stream(small_dynamic_stream.prefix(2000), path)
        return path

    def test_convert_text_to_binary_and_back(
        self, text_stream_file, tmp_path, capsys
    ):
        from repro.streams.io import read_stream

        binary = tmp_path / "stream.vosstream"
        assert main(
            ["convert", "--input", str(text_stream_file), "--output", str(binary)]
        ) == 0
        out = capsys.readouterr().out
        assert "converted 2000 elements" in out
        assert binary.exists()

        text_again = tmp_path / "back.txt"
        assert main(
            ["convert", "--input", str(binary), "--output", str(text_again)]
        ) == 0
        assert list(read_stream(text_again)) == list(read_stream(text_stream_file))

    def test_convert_missing_input_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "convert",
                "--input", str(tmp_path / "nope.txt"),
                "--output", str(tmp_path / "out.vosstream"),
            ]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_parallel_ingest_matches_serial_snapshot(
        self, text_stream_file, tmp_path, capsys
    ):
        from repro.service.snapshot import load_snapshot

        binary = tmp_path / "stream.vosstream"
        assert main(
            ["convert", "--input", str(text_stream_file), "--output", str(binary)]
        ) == 0

        serial_snapshot = tmp_path / "serial.vos"
        parallel_snapshot = tmp_path / "parallel.vos"
        for snapshot, stream, extra in (
            (serial_snapshot, text_stream_file, []),
            (parallel_snapshot, binary, ["--workers", "4", "--format", "binary"]),
        ):
            code = main(
                [
                    "ingest",
                    "--stream", str(stream),
                    "--snapshot", str(snapshot),
                    "--shards", "4",
                    "--registers", "8",
                    "--batch-size", "256",
                ]
                + extra
            )
            assert code == 0
        capsys.readouterr()

        import numpy as np

        serial = load_snapshot(serial_snapshot)
        parallel = load_snapshot(parallel_snapshot)
        for shard_a, shard_b in zip(serial.shards, parallel.shards):
            assert np.array_equal(
                shard_a.shared_array._bits._bits, shard_b.shared_array._bits._bits
            )
            assert shard_a._cardinalities == shard_b._cardinalities

    def test_ingest_reports_workers(self, text_stream_file, tmp_path, capsys):
        snapshot = tmp_path / "state.vos"
        code = main(
            [
                "ingest",
                "--stream", str(text_stream_file),
                "--snapshot", str(snapshot),
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "workers" in capsys.readouterr().out

    def test_no_validate_ingest_streams_chunks_and_matches(
        self, text_stream_file, tmp_path, capsys
    ):
        """--no-validate takes the chunked columnar path, same final state."""
        import numpy as np

        from repro.service.snapshot import load_snapshot

        binary = tmp_path / "stream.vosstream"
        assert main(
            ["convert", "--input", str(text_stream_file), "--output", str(binary)]
        ) == 0
        validated = tmp_path / "validated.vos"
        streamed = tmp_path / "streamed.vos"
        for snapshot, extra in (
            (validated, []),
            (streamed, ["--no-validate", "--workers", "2"]),
        ):
            assert main(
                [
                    "ingest",
                    "--stream", str(binary),
                    "--snapshot", str(snapshot),
                    "--shards", "4",
                    "--registers", "8",
                ]
                + extra
            ) == 0
        capsys.readouterr()
        a = load_snapshot(validated)
        b = load_snapshot(streamed)
        for shard_a, shard_b in zip(a.shards, b.shards):
            assert np.array_equal(
                shard_a.shared_array._bits._bits, shard_b.shared_array._bits._bits
            )
            assert shard_a._cardinalities == shard_b._cardinalities

    def test_string_id_stream_ingest_fails_fast_with_exit_2(self, tmp_path, capsys):
        """Snapshots need int users: string-id ingest must not traceback."""
        path = tmp_path / "named.txt"
        path.write_text("+ alice 1\n+ bob 1\n")
        code = main(
            [
                "ingest",
                "--stream", str(path),
                "--snapshot", str(tmp_path / "state.vos"),
            ]
        )
        assert code == 2
        assert "not 64-bit integers" in capsys.readouterr().err
        assert not (tmp_path / "state.vos").exists()

    def test_missing_stream_file_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "ingest",
                "--stream", str(tmp_path / "nope.txt"),
                "--snapshot", str(tmp_path / "state.vos"),
            ]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_overflowing_user_ids_fail_fast(self, tmp_path, capsys):
        """Ids beyond int64 can't be snapshotted either; fail before ingest."""
        from repro.streams import Action, GraphStream, StreamElement, write_stream

        path = tmp_path / "big.vosstream"
        write_stream(
            GraphStream([StreamElement(2**70, 1, Action.INSERT)]), path
        )
        code = main(
            [
                "ingest",
                "--stream", str(path),
                "--snapshot", str(tmp_path / "state.vos"),
                "--no-validate",
            ]
        )
        assert code == 2
        assert "not 64-bit integers" in capsys.readouterr().err


class TestIndexCommands:
    """``repro index`` and ``--index lsh`` on the query commands."""

    @pytest.fixture()
    def snapshot(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(5)
        lines = []
        for pair in range(100):
            items = rng.integers(0, 10**6, size=12)
            for user in (2 * pair, 2 * pair + 1):
                lines += [f"+ {user} {item}" for item in items]
        stream = tmp_path / "clones.txt"
        stream.write_text("\n".join(lines) + "\n")
        snapshot = tmp_path / "state.vos"
        code = main(
            [
                "ingest",
                "--stream", str(stream),
                "--snapshot", str(snapshot),
                "--shards", "4",
                "--registers", "8",
                "--batch-size", "512",
                "--seed", "3",
            ]
        )
        assert code == 0
        return snapshot

    def test_pairs_lsh_is_deterministic_across_runs(self, snapshot, capsys):
        """Band seeds flow from the snapshot's sketch seed: identical output."""
        assert main(["pairs", "--snapshot", str(snapshot), "-k", "5", "--index", "lsh"]) == 0
        first = capsys.readouterr().out
        assert main(["pairs", "--snapshot", str(snapshot), "-k", "5", "--index", "lsh"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "candidates lsh" in first
        assert "jaccard" in first
        # Header comment + column headers + rule + at least one scored pair.
        assert len(first.strip().splitlines()) >= 4

    def test_topk_lsh_is_deterministic_across_runs(self, snapshot, capsys):
        argv = ["topk", "--snapshot", str(snapshot), "--user", "0", "-k", "3", "--index", "lsh"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert first == capsys.readouterr().out

    def test_index_build_reports_layout_and_seed(self, snapshot, capsys):
        assert main(["index", "build", "--snapshot", str(snapshot), "--csv"]) == 0
        out = capsys.readouterr().out
        assert "bands," in out
        # The band seed is the snapshot's sketch seed (ingest ran with --seed 3).
        assert "seed,3" in out
        assert "build sec," in out

    def test_index_stats_reports_candidate_reduction(self, snapshot, capsys):
        assert main(["index", "stats", "--snapshot", str(snapshot), "--csv"]) == 0
        out = capsys.readouterr().out
        assert "candidate pairs," in out
        assert "candidate fraction," in out
        assert "all pairs,19900" in out

    def test_index_accepts_explicit_band_layout(self, snapshot, capsys):
        code = main(
            [
                "index", "build",
                "--snapshot", str(snapshot),
                "--bands", "4",
                "--rows-per-band", "2",
                "--csv",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bands,4" in out
        assert "band bits,128" in out

    def test_index_build_missing_snapshot_exits_2(self, tmp_path, capsys):
        code = main(["index", "build", "--snapshot", str(tmp_path / "nope.vos")])
        assert code == 2
        assert capsys.readouterr().err


class TestSnapshotCommands:
    """``repro snapshot save|delta|compact|info`` — the incremental persistence CLI."""

    @pytest.fixture()
    def seeded(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(7)
        lines = []
        for pair in range(40):
            items = rng.integers(0, 10**6, size=10)
            for user in (2 * pair, 2 * pair + 1):
                lines += [f"+ {user} {item}" for item in items]
        stream = tmp_path / "base.txt"
        stream.write_text("\n".join(lines) + "\n")
        more = tmp_path / "more.txt"
        more.write_text(
            "\n".join(f"+ {user} {9_000_000 + item}" for user in (0, 1) for item in range(5))
            + "\n"
        )
        snapshot = tmp_path / "state.vos"
        assert (
            main(
                [
                    "ingest",
                    "--stream", str(stream),
                    "--snapshot", str(snapshot),
                    "--shards", "4",
                    "--registers", "8",
                    "--seed", "3",
                ]
            )
            == 0
        )
        return snapshot, more

    def test_info_reports_v2_and_no_journal(self, seeded, capsys):
        snapshot, _ = seeded
        assert main(["snapshot", "info", "--snapshot", str(snapshot), "--csv"]) == 0
        out = capsys.readouterr().out
        assert "format version,2" in out
        assert "journal,none" in out

    def test_delta_then_load_matches_full_rewrite(self, seeded, capsys, tmp_path):
        from repro.service import SimilarityService
        from repro.service.journal import default_journal_path

        snapshot, more = seeded
        reference = SimilarityService.load(snapshot)
        assert (
            main(
                [
                    "snapshot", "delta",
                    "--snapshot", str(snapshot),
                    "--stream", str(more),
                    "--csv",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "delta records," in out
        assert default_journal_path(snapshot).exists()
        # The journal-replayed state equals re-ingesting through the library.
        from repro.streams.io import iter_stream_batches

        reference.ingest(iter_stream_batches(more))
        restored = SimilarityService.load(snapshot)
        for a, b in zip(reference.sketch.shards, restored.sketch.shards):
            assert a._cardinalities == b._cardinalities
            import numpy as np

            assert np.array_equal(
                a.shared_array._bits._bits, b.shared_array._bits._bits
            )

    def test_compact_resets_the_journal(self, seeded, capsys):
        from repro.service.journal import default_journal_path

        snapshot, more = seeded
        assert (
            main(
                ["snapshot", "delta", "--snapshot", str(snapshot), "--stream", str(more)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["snapshot", "compact", "--snapshot", str(snapshot), "--csv"]) == 0
        out = capsys.readouterr().out
        assert "journal bytes,0" in out
        assert not default_journal_path(snapshot).exists()

    def test_save_with_index_makes_restart_report_restored(self, seeded, capsys):
        """The satellite contract: stats()["index"]["restored"] after load."""
        snapshot, _ = seeded
        assert (
            main(
                ["snapshot", "save", "--snapshot", str(snapshot), "--with-index", "--csv"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "index persisted,True" in out
        assert main(["index", "stats", "--snapshot", str(snapshot), "--csv"]) == 0
        out = capsys.readouterr().out
        assert "restored,4" in out
        assert "rebuilds,0" in out
        # Library-level assertion of the same counter.
        from repro.service import SimilarityService

        restored = SimilarityService.load(snapshot)
        assert restored.stats()["index"]["restored"] == 4

    def test_save_without_index_rebuilds_on_stats(self, seeded, capsys):
        snapshot, _ = seeded
        assert main(["index", "stats", "--snapshot", str(snapshot), "--csv"]) == 0
        out = capsys.readouterr().out
        assert "restored,0" in out
        assert "rebuilds," in out and "rebuilds,0" not in out

    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        code = main(
            ["snapshot", "info", "--snapshot", str(tmp_path / "missing.vos")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestVersion:
    def test_version_flag_prints_the_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_is_single_sourced(self):
        """setup.py, repro.__version__ and the wire handshake must agree."""
        import re
        from pathlib import Path

        from repro import __version__
        from repro.server.protocol import hello_payload

        setup_text = (
            Path(__file__).resolve().parent.parent / "setup.py"
        ).read_text(encoding="utf-8")
        assert '_version.py' in setup_text  # setup.py parses the same file
        assert re.search(r"version=_read_version\(\)", setup_text)
        assert hello_payload(epoch=1)["version"] == __version__


class TestServeQueryParsers:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--snapshot", "s.vos"])
        assert args.handler is not None
        assert args.host == "127.0.0.1"
        assert args.port == 7437
        assert args.serve_workers == 4

    def test_query_parser_modes(self):
        parser = build_parser()
        pairs = parser.parse_args(["query", "--connect", "127.0.0.1:7437", "-k", "5"])
        assert pairs.user is None and pairs.k == 5
        user = parser.parse_args(
            ["query", "--connect", "localhost:1234", "--user", "7", "--index", "lsh"]
        )
        assert user.user == 7 and user.index == "lsh"
        stats = parser.parse_args(["query", "--connect", "h:1", "--stats"])
        assert stats.stats is True

    def test_query_against_nothing_exits_2(self, capsys):
        code = main(["query", "--connect", "127.0.0.1:1", "-k", "3"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_connect_string_parsing(self):
        from repro.cli import _parse_connect
        from repro.exceptions import DatasetError

        assert _parse_connect("10.0.0.2:9000") == ("10.0.0.2", 9000)
        assert _parse_connect("myhost") == ("myhost", 7437)
        with pytest.raises(DatasetError):
            _parse_connect("host:notaport")
