"""Tests for repro.hashing.universal."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.hashing.universal import UniversalHash, fingerprint64, stable_hash64


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint64("item-1") == fingerprint64("item-1")

    def test_distinct_keys_differ(self):
        values = {fingerprint64(i) for i in range(1000)}
        assert len(values) == 1000

    def test_int_and_string_keys_supported(self):
        assert isinstance(fingerprint64(5), int)
        assert isinstance(fingerprint64("five"), int)
        assert isinstance(fingerprint64(("a", 1)), int)

    def test_fits_in_64_bits(self):
        for key in [0, 1, 2**63, "x", ("t", 9)]:
            assert 0 <= fingerprint64(key) < 2**64

    def test_bool_matches_int(self):
        assert fingerprint64(True) == fingerprint64(1)
        assert fingerprint64(False) == fingerprint64(0)


class TestStableHash:
    def test_seed_changes_output(self):
        outputs = {stable_hash64("key", seed) for seed in range(50)}
        assert len(outputs) == 50

    def test_same_seed_same_output(self):
        assert stable_hash64("key", 3) == stable_hash64("key", 3)

    def test_different_keys_differ(self):
        assert stable_hash64("a", 1) != stable_hash64("b", 1)


class TestUniversalHash:
    def test_range_respected(self):
        h = UniversalHash(range_size=13, seed=5)
        assert all(0 <= h(i) < 13 for i in range(500))

    def test_deterministic_across_instances(self):
        assert UniversalHash(100, seed=9)("k") == UniversalHash(100, seed=9)("k")

    def test_seeds_give_different_functions(self):
        h1 = UniversalHash(1000, seed=1)
        h2 = UniversalHash(1000, seed=2)
        disagreements = sum(1 for i in range(200) if h1(i) != h2(i))
        assert disagreements > 150

    def test_invalid_range_raises(self):
        with pytest.raises(ConfigurationError):
            UniversalHash(range_size=0)
        with pytest.raises(ConfigurationError):
            UniversalHash(range_size=-5)

    def test_roughly_uniform_distribution(self):
        h = UniversalHash(range_size=10, seed=3)
        counts = [0] * 10
        samples = 5000
        for i in range(samples):
            counts[h(i)] += 1
        expected = samples / 10
        assert all(0.6 * expected < c < 1.4 * expected for c in counts)

    def test_value64_wide_range(self):
        h = UniversalHash(range_size=4, seed=1)
        wide = {h.value64(i) for i in range(100)}
        assert len(wide) == 100
        assert all(v >= 0 for v in wide)

    def test_unit_interval_bounds(self):
        h = UniversalHash(range_size=4, seed=1)
        values = [h.unit_interval(i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7

    def test_is_frozen_dataclass(self):
        h = UniversalHash(range_size=4, seed=1)
        with pytest.raises(Exception):
            h.range_size = 8  # type: ignore[misc]


class TestVectorizedHashing:
    """The numpy fast path must agree bit-for-bit with the scalar path."""

    KEYS = [0, 1, -1, 2, 17, -12345, 2**31, 2**63 - 1, -(2**63), 987654321012345]

    def test_fingerprint64_array_matches_scalar(self):
        import numpy as np

        from repro.hashing.universal import fingerprint64, fingerprint64_array

        values = fingerprint64_array(np.array(self.KEYS, dtype=np.int64))
        for index, key in enumerate(self.KEYS):
            assert int(values[index]) == fingerprint64(key)

    @pytest.mark.parametrize("seed", [0, 1, 424242, -9])
    @pytest.mark.parametrize("range_size", [1, 2, 13, 4096, 10**9 + 7])
    def test_hash_array_matches_scalar(self, seed, range_size):
        import numpy as np

        h = UniversalHash(range_size=range_size, seed=seed)
        values = h.hash_array(np.array(self.KEYS, dtype=np.int64))
        for index, key in enumerate(self.KEYS):
            assert int(values[index]) == h(key)

    def test_hash_array_large_random_sample(self):
        import random

        import numpy as np

        rng = random.Random(7)
        keys = [rng.randrange(-(2**63), 2**63) for _ in range(3000)]
        h = UniversalHash(range_size=100003, seed=5)
        values = h.hash_array(np.array(keys, dtype=np.int64))
        assert all(int(values[i]) == h(k) for i, k in enumerate(keys))

    def test_value64_array_matches_scalar(self):
        import numpy as np

        h = UniversalHash(range_size=7, seed=3)
        wide = h.value64_array(np.array(self.KEYS, dtype=np.int64))
        for index, key in enumerate(self.KEYS):
            assert int(wide[index]) == h.value64(key)

    def test_rejects_non_integer_arrays(self):
        import numpy as np

        from repro.exceptions import ConfigurationError
        from repro.hashing.universal import fingerprint64_array

        with pytest.raises(ConfigurationError):
            fingerprint64_array(np.array([1.5, 2.5]))
