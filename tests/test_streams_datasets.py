"""Tests for repro.streams.datasets."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.streams.datasets import DATASET_SPECS, DatasetSpec, load_dataset
from repro.streams.stream import GraphStream


class TestDatasetSpecs:
    def test_all_four_paper_datasets_present(self):
        assert set(DATASET_SPECS) == {"youtube", "flickr", "livejournal", "orkut"}

    def test_relative_ordering_matches_paper(self):
        sizes = {name: spec.num_edges for name, spec in DATASET_SPECS.items()}
        assert sizes["youtube"] < sizes["flickr"] < sizes["livejournal"] < sizes["orkut"]

    def test_deletion_probability_is_half(self):
        assert all(spec.deletion_probability == 0.5 for spec in DATASET_SPECS.values())

    def test_scaled_reduces_sizes(self):
        spec = DATASET_SPECS["youtube"].scaled(0.1)
        assert spec.num_edges < DATASET_SPECS["youtube"].num_edges
        assert spec.num_users < DATASET_SPECS["youtube"].num_users
        assert spec.name == "youtube"

    def test_scaled_has_minimum_sizes(self):
        spec = DATASET_SPECS["youtube"].scaled(0.000001)
        assert spec.num_users >= 10
        assert spec.num_edges >= 20


class TestLoadDataset:
    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("not-a-dataset")

    def test_name_is_case_insensitive(self):
        stream = load_dataset("YouTube", scale=0.02)
        assert stream.name == "youtube"

    def test_dynamic_stream_has_deletions(self):
        stream = load_dataset("youtube", scale=0.05)
        assert stream.statistics().deletions > 0

    def test_static_stream_has_no_deletions(self):
        stream = load_dataset("youtube", scale=0.05, dynamic=False)
        assert stream.statistics().deletions == 0

    def test_stream_is_feasible(self):
        stream = load_dataset("flickr", scale=0.03)
        GraphStream(stream.elements)  # revalidation must not raise

    def test_deletion_probability_override(self):
        none_deleted = load_dataset("youtube", scale=0.05, deletion_probability=0.0)
        assert none_deleted.statistics().deletions == 0

    def test_deterministic(self):
        a = load_dataset("orkut", scale=0.02)
        b = load_dataset("orkut", scale=0.02)
        assert list(a) == list(b)

    def test_returns_graph_stream_type(self):
        assert isinstance(load_dataset("livejournal", scale=0.02), GraphStream)


class TestDatasetSpecDataclass:
    def test_spec_fields(self):
        spec = DatasetSpec(
            name="custom", num_users=10, num_items=20, num_edges=50, deletion_period=25
        )
        assert spec.deletion_probability == 0.5
        assert spec.seed == 0
