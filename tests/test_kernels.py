"""Parity matrix for the kernel tiers (NumPy vs native C).

Every fast path in this repo ships with a bit-identity gate against its
reference implementation; the kernel tiers get the same treatment.  The
matrix covers sketch sizes {63, 64, 1024, 1536}, empty pair lists, odd
(non-word-aligned) row widths against a scalar popcount loop, string-id
pools, end-to-end rankings, LSH candidate generation, and the strict
``REPRO_KERNEL=native`` failure mode.  Native cases skip (never silently
pass) when no compiler is available — CI runs this file under both
``REPRO_KERNEL=numpy`` and ``REPRO_KERNEL=native`` so a host with a compiler
can never quietly lose the fast tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.core.memory import MemoryBudget
from repro.core.vos import VirtualOddSketch, packed_row_bytes, pair_xor_counts
from repro.exceptions import ConfigurationError
from repro.hashing.universal import _MERSENNE_P, UniversalHash, stable_hash64
from repro.index import BandedSketchIndex, IndexConfig
from repro.kernels import numpy_tier
from repro.service.sharding import ShardedVOS
from repro.similarity.search import top_k_similar_pairs
from repro.streams.edge import Action, StreamElement

SKETCH_SIZES = (63, 64, 1024, 1536)

_NATIVE_AVAILABLE = None


def native_available() -> bool:
    global _NATIVE_AVAILABLE
    if _NATIVE_AVAILABLE is None:
        with kernels.use_tier("auto"):
            _NATIVE_AVAILABLE = kernels.active_tier() == "native"
    return _NATIVE_AVAILABLE


def tiers() -> list[str]:
    return ["numpy"] + (["native"] if native_available() else [])


def _random_rows(rng, n_users: int, sketch_size: int) -> np.ndarray:
    rows = rng.integers(
        0, 256, size=(n_users, packed_row_bytes(sketch_size)), dtype=np.uint8
    )
    # Zero the padding bits past ``sketch_size`` like real packed rows have.
    if sketch_size % 8:
        rows[:, sketch_size // 8] &= (1 << (sketch_size % 8)) - 1
    rows[:, (sketch_size + 7) // 8 :] = 0
    return rows


def _scalar_counts(rows: np.ndarray, index_a, index_b) -> np.ndarray:
    """Pure-Python popcount reference, one pair at a time."""
    out = np.empty(len(index_a), dtype=np.int64)
    for t, (a, b) in enumerate(zip(index_a, index_b)):
        xored = np.bitwise_xor(rows[a], rows[b]).tobytes()
        out[t] = int.from_bytes(xored, "little").bit_count()
    return out


class TestPairCountParity:
    @pytest.mark.parametrize("sketch_size", SKETCH_SIZES)
    def test_tiers_match_scalar_reference(self, sketch_size):
        rng = np.random.default_rng(sketch_size)
        rows = _random_rows(rng, 120, sketch_size)
        index_a = rng.integers(0, 120, size=3000).astype(np.int64)
        index_b = rng.integers(0, 120, size=3000).astype(np.int64)
        reference = _scalar_counts(rows, index_a[:200], index_b[:200])
        results = {}
        for tier in tiers():
            with kernels.use_tier(tier):
                results[tier] = kernels.pair_counts(rows, index_a, index_b)
            assert np.array_equal(results[tier][:200], reference), tier
        if "native" in results:
            assert np.array_equal(results["numpy"], results["native"])

    @pytest.mark.parametrize("sketch_size", SKETCH_SIZES)
    def test_empty_pair_list(self, sketch_size):
        rng = np.random.default_rng(1)
        rows = _random_rows(rng, 10, sketch_size)
        empty = np.empty(0, dtype=np.int64)
        for tier in tiers():
            with kernels.use_tier(tier):
                counts = kernels.pair_counts(rows, empty, empty)
            assert counts.shape == (0,) and counts.dtype == np.int64

    def test_non_word_aligned_rows_match_scalar_loop(self):
        """The byte-lane fallback for rows not padded to whole uint64 words.

        ``packed_row_bytes`` always pads real sketch rows to word multiples,
        but ``pair_xor_counts`` accepts arbitrary byte matrices; odd widths
        must agree with a scalar popcount loop under every tier (the native
        tier reads uint64 lanes, so dispatch must route these to NumPy).
        """
        rng = np.random.default_rng(9)
        for row_bytes in (1, 5, 12, 191):
            rows = rng.integers(0, 256, size=(40, row_bytes), dtype=np.uint8)
            index_a = rng.integers(0, 40, size=400).astype(np.int64)
            index_b = rng.integers(0, 40, size=400).astype(np.int64)
            reference = _scalar_counts(rows, index_a, index_b)
            for tier in tiers():
                with kernels.use_tier(tier):
                    counts = kernels.pair_counts(rows, index_a, index_b)
                assert np.array_equal(counts, reference), (tier, row_bytes)

    def test_block_boundaries_are_invisible(self, monkeypatch):
        """Counts must not depend on how the sweep is blocked."""
        rng = np.random.default_rng(3)
        rows = _random_rows(rng, 50, 256)
        index_a = rng.integers(0, 50, size=1000).astype(np.int64)
        index_b = rng.integers(0, 50, size=1000).astype(np.int64)
        with kernels.use_tier("numpy"):
            baseline = kernels.pair_counts(rows, index_a, index_b)
            monkeypatch.setenv("REPRO_PAIR_BLOCK_PAIRS", "7")
            assert np.array_equal(kernels.pair_counts(rows, index_a, index_b), baseline)

    def test_popcount_table_tier_matches(self, monkeypatch):
        """numpy<2.0 byte-table path stays bit-identical inside the new tier."""
        rng = np.random.default_rng(4)
        rows = _random_rows(rng, 30, 1024)
        index_a = rng.integers(0, 30, size=500).astype(np.int64)
        index_b = rng.integers(0, 30, size=500).astype(np.int64)
        with kernels.use_tier("numpy"):
            baseline = kernels.pair_counts(rows, index_a, index_b)
            monkeypatch.setattr(
                numpy_tier, "_bitwise_count", numpy_tier._popcount_table
            )
            assert np.array_equal(kernels.pair_counts(rows, index_a, index_b), baseline)


class TestBandSignatureParity:
    @pytest.mark.parametrize("sketch_size", SKETCH_SIZES)
    def test_tiers_match(self, sketch_size):
        rng = np.random.default_rng(sketch_size + 1)
        rows = _random_rows(rng, 80, sketch_size)
        words = rows.view(np.uint64)
        row_words = words.shape[1]
        bands = max(1, min(6, row_words))
        rows_per_band = row_words // bands
        hashes = [
            UniversalHash(
                range_size=_MERSENNE_P, seed=stable_hash64(("index-band", 0, band))
            )
            for band in range(bands)
        ] + [
            UniversalHash(
                range_size=_MERSENNE_P, seed=stable_hash64(("index-residual", 0))
            )
        ]
        coeff_a = np.array([h._coefficients[0] for h in hashes], dtype=np.uint64)
        coeff_b = np.array([h._coefficients[1] for h in hashes], dtype=np.uint64)
        results = {}
        for tier in tiers():
            with kernels.use_tier(tier):
                results[tier] = kernels.band_signatures(
                    words, bands, rows_per_band, coeff_a, coeff_b
                )
        signatures, set_bits = results["numpy"]
        # Column hashes must agree with the scalar UniversalHash definition.
        assert signatures.shape == (80, bands + 1)
        assert (signatures < np.uint64(_MERSENNE_P)).all()
        expected_bits = numpy_tier._popcount_table(
            words[:, : bands * rows_per_band].reshape(80, bands, rows_per_band)
        ).sum(axis=2, dtype=np.int64)
        assert np.array_equal(set_bits, expected_bits)
        if "native" in results:
            assert np.array_equal(signatures, results["native"][0])
            assert np.array_equal(set_bits, results["native"][1])

    def test_empty_user_list(self):
        words = np.empty((0, 4), dtype=np.uint64)
        coeff = np.ones(3, dtype=np.uint64)
        for tier in tiers():
            with kernels.use_tier(tier):
                signatures, set_bits = kernels.band_signatures(words, 2, 2, coeff, coeff)
            assert signatures.shape == (0, 3) and set_bits.shape == (0, 2)

    def test_geometry_validation(self):
        words = np.zeros((2, 4), dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            kernels.band_signatures(words, 5, 1, np.ones(6, np.uint64), np.ones(6, np.uint64))
        with pytest.raises(ConfigurationError):
            kernels.band_signatures(words, 2, 2, np.ones(2, np.uint64), np.ones(2, np.uint64))


def _string_pool_sketch():
    sketch = ShardedVOS.from_budget(
        MemoryBudget(baseline_registers=24, num_users=400),
        num_shards=3,
        seed=13,
    )
    rng = np.random.default_rng(13)
    elements = []
    for user in range(60):
        items = rng.choice(500, size=30, replace=False)
        for item in items:
            elements.append(StreamElement(f"user-{user:03d}", int(item), Action.INSERT))
    sketch.process_batch(elements)
    return sketch


class TestEndToEndParity:
    def test_rankings_bit_identical_across_tiers_string_ids(self):
        """Full ranking parity on a string-id pool: same pairs, same scores."""
        sketch = _string_pool_sketch()
        rankings = {}
        for tier in tiers():
            with kernels.use_tier(tier):
                rankings[tier] = [
                    (pair.user_a, pair.user_b, pair.jaccard, pair.common_items)
                    for pair in top_k_similar_pairs(sketch, k=25)
                ]
        if "native" in rankings:
            assert rankings["numpy"] == rankings["native"]
        assert len(rankings["numpy"]) == 25

    def test_pair_xor_counts_entrypoint_dispatches(self):
        """The vos-level wrapper and the dispatch layer agree under each tier."""
        rng = np.random.default_rng(8)
        rows = _random_rows(rng, 64, 1536)
        index_a = rng.integers(0, 64, size=800).astype(np.int64)
        index_b = rng.integers(0, 64, size=800).astype(np.int64)
        results = {}
        for tier in tiers():
            with kernels.use_tier(tier):
                results[tier] = pair_xor_counts(rows, index_a, index_b)
        if "native" in results:
            assert np.array_equal(results["numpy"], results["native"])

    def test_lsh_candidates_identical_across_tiers(self):
        """Band signatures drive bucketing: candidate sets must match exactly."""
        sketch = _string_pool_sketch()
        pool = sorted(sketch.users())
        candidates = {}
        for tier in tiers():
            with kernels.use_tier(tier):
                index = BandedSketchIndex(sketch, IndexConfig())
                index.build()
                index_a, index_b = index.candidate_pairs(pool)
                candidates[tier] = (index_a.tolist(), index_b.tolist())
        if "native" in candidates:
            assert candidates["numpy"] == candidates["native"]


class TestDispatchControls:
    def test_auto_sized_blocks(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAIR_BLOCK_PAIRS", raising=False)
        narrow = kernels.pair_block_pairs(8)
        wide = kernels.pair_block_pairs(192)
        assert narrow > wide
        assert narrow <= numpy_tier.MAX_BLOCK_PAIRS
        assert wide >= numpy_tier.MIN_BLOCK_PAIRS
        # Power-of-two blocks whose gather buffer stays near the target.
        assert wide * 192 <= numpy_tier.TARGET_BLOCK_BYTES
        monkeypatch.setenv("REPRO_PAIR_BLOCK_PAIRS", "12345")
        assert kernels.pair_block_pairs(192) == 12345

    def test_invalid_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "cuda")
        with pytest.raises(ConfigurationError):
            kernels.requested_tier()

    def test_strict_native_raises_without_compiler(self, monkeypatch):
        """REPRO_KERNEL=native must fail loudly when the build is impossible."""
        from repro.kernels import native as native_module

        kernels.reset_kernels()
        monkeypatch.setattr(native_module, "_find_compiler", lambda: None)
        try:
            with kernels.use_tier("native"):
                with pytest.raises(ConfigurationError):
                    kernels.active_tier()
                info = kernels.kernel_info()
                assert info["active"] is None
                assert "native" in info["error"]
        finally:
            kernels.reset_kernels()

    def test_kernel_info_shape(self):
        info = kernels.kernel_info()
        assert info["requested"] in ("auto", "numpy", "native")
        assert info["active"] in ("numpy", "native")
        assert isinstance(info["native"]["available"], bool)
        assert info["numpy_popcount"] in ("bitwise_count", "byte_table")

    def test_stats_expose_kernel_tier(self):
        from repro.service import ServiceConfig, SimilarityService

        service = SimilarityService.from_config(ServiceConfig(expected_users=50))
        service.ingest(
            [StreamElement(u, i, Action.INSERT) for u in (1, 2) for i in range(20)]
        )
        stats = service.stats()
        assert stats["kernels"]["active"] in ("numpy", "native")

    def test_obs_counters_per_tier(self):
        from repro.obs import get_registry

        registry = get_registry()
        rng = np.random.default_rng(2)
        rows = _random_rows(rng, 16, 64)
        index = rng.integers(0, 16, size=64).astype(np.int64)
        for tier in tiers():
            counter = registry.counter(f"kernels.{tier}.pairs_scored", unit="pairs")
            before = counter.value
            with kernels.use_tier(tier):
                kernels.pair_counts(rows, index, index)
            assert counter.value == before + 64


def test_native_tier_active_when_forced():
    """Under REPRO_KERNEL=native the active tier must actually be native.

    CI runs the suite with REPRO_KERNEL=native on compiler-equipped hosts;
    strict mode raising on a broken toolchain (covered above) plus this check
    guarantees the fast tier can never silently fall back there.
    """
    if not native_available():
        pytest.skip("no C compiler: native tier unavailable on this host")
    with kernels.use_tier("native"):
        assert kernels.active_tier() == "native"
        info = kernels.kernel_info()
        assert info["native"]["available"] is True
        assert info["native"]["library"]
