"""Property-based tests of cross-sketch invariants.

These treat all streaming sketches uniformly: whatever the stream, estimates
must remain in their mathematical domains, cardinality counters must match the
exact tracker, and insertion-only behaviour must be deletion-free-sane.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bbit import BBitMinHash
from repro.baselines.exact import ExactSimilarityTracker
from repro.baselines.minhash import DynamicMinHash
from repro.baselines.oph import DynamicOPH
from repro.baselines.random_pairing import RandomPairingSketch
from repro.core.vos import VirtualOddSketch
from repro.similarity.measures import jaccard_coefficient
from repro.streams.deletions import UniformDeletionModel
from repro.streams.stream import build_dynamic_stream

edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=60)),
    min_size=5,
    max_size=250,
)


def _all_sketches(seed: int):
    return [
        DynamicMinHash(16, seed=seed),
        DynamicOPH(16, seed=seed),
        RandomPairingSketch(16, seed=seed),
        BBitMinHash(16, bits=2, seed=seed),
        VirtualOddSketch(shared_array_bits=1 << 13, virtual_sketch_size=512, seed=seed),
    ]


@given(
    edges=edge_lists,
    rate=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_every_sketch_keeps_estimates_in_domain(edges, rate, seed):
    stream = build_dynamic_stream(edges, UniformDeletionModel(rate=rate, seed=seed))
    exact = ExactSimilarityTracker()
    sketches = _all_sketches(seed)
    for element in stream:
        exact.process(element)
        for sketch in sketches:
            sketch.process(element)
    users = sorted(exact.users())
    pairs = [(users[i], users[j]) for i in range(len(users)) for j in range(i + 1, min(i + 3, len(users)))]
    for user_a, user_b in pairs[:10]:
        for sketch in sketches:
            jaccard = sketch.estimate_jaccard(user_a, user_b)
            common = sketch.estimate_common_items(user_a, user_b)
            assert 0.0 <= jaccard <= 1.0
            assert common >= 0.0


@given(
    edges=edge_lists,
    rate=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_every_sketch_cardinality_matches_exact_tracker(edges, rate, seed):
    stream = build_dynamic_stream(edges, UniformDeletionModel(rate=rate, seed=seed))
    exact = ExactSimilarityTracker()
    sketches = _all_sketches(seed)
    for element in stream:
        exact.process(element)
        for sketch in sketches:
            sketch.process(element)
    for user in exact.users():
        expected = exact.cardinality(user)
        for sketch in sketches:
            assert sketch.cardinality(user) == expected


@given(items=st.sets(st.integers(min_value=0, max_value=3000), min_size=1, max_size=150),
       seed=st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_identical_users_score_at_least_as_high_as_disjoint_users(items, seed):
    """For every sketch, a pair of identical users must not score below a pair
    of disjoint users of the same size (sanity ordering property)."""
    disjoint = {item + 10_000 for item in items}
    for sketch in _all_sketches(seed):
        from repro.streams.edge import Action, StreamElement

        for item in items:
            sketch.process(StreamElement(1, item, Action.INSERT))
            sketch.process(StreamElement(2, item, Action.INSERT))
        for item in disjoint:
            sketch.process(StreamElement(3, item, Action.INSERT))
        identical_score = sketch.estimate_jaccard(1, 2)
        disjoint_score = sketch.estimate_jaccard(1, 3)
        assert identical_score >= disjoint_score - 0.15


@given(
    set_a=st.sets(st.integers(min_value=0, max_value=400), max_size=100),
    set_b=st.sets(st.integers(min_value=0, max_value=400), max_size=100),
)
@settings(max_examples=100)
def test_exact_tracker_matches_measure_functions(set_a, set_b):
    from repro.streams.edge import Action, StreamElement

    exact = ExactSimilarityTracker()
    for item in set_a:
        exact.process(StreamElement(1, item, Action.INSERT))
    for item in set_b:
        exact.process(StreamElement(2, item, Action.INSERT))
    if not set_a or not set_b:
        return
    assert exact.estimate_common_items(1, 2) == len(set_a & set_b)
    assert exact.estimate_jaccard(1, 2) == pytest.approx(jaccard_coefficient(set_a, set_b))
