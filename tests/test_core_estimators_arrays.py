"""Tests for the array-valued estimators (the bulk query path's math layer).

The array forms promise bitwise agreement with looping the scalar forms over
any mix of ``alpha`` / ``beta`` / cardinality inputs, including the saturation
edge cases where the logarithm is clamped (or raises in strict mode).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import (
    estimate_common_items_arrays,
    estimate_common_items_cross,
    estimate_jaccard_arrays,
    estimate_jaccard_cross,
    estimate_symmetric_difference_arrays,
    estimate_symmetric_difference_cross,
)
from repro.exceptions import ConfigurationError, EstimationError

SKETCH_SIZE = 64

ALPHAS = [0.0, 1.0 / SKETCH_SIZE, 0.125, 0.25, 0.4921875, 0.5, 0.75, 1.0]
BETAS = [0.0, 0.0078125, 0.125, 0.4921875, 0.5]
CARDS = [0, 1, 7, 150]


def _pair_grid():
    """Every combination of alpha and the two betas, with cycling cardinalities."""
    combos = [
        (alpha, beta_a, beta_b)
        for alpha in ALPHAS
        for beta_a in BETAS
        for beta_b in BETAS
    ]
    alphas = np.array([combo[0] for combo in combos])
    betas_a = np.array([combo[1] for combo in combos])
    betas_b = np.array([combo[2] for combo in combos])
    cards_a = np.array([CARDS[i % len(CARDS)] for i in range(len(combos))])
    cards_b = np.array([CARDS[(i // len(CARDS)) % len(CARDS)] for i in range(len(combos))])
    return alphas, betas_a, betas_b, cards_a, cards_b


class TestSymmetricDifferenceArrays:
    def test_matches_scalar_loop_bitwise(self):
        alphas, betas_a, betas_b, _, _ = _pair_grid()
        bulk = estimate_symmetric_difference_arrays(
            alphas, betas_a, betas_b, SKETCH_SIZE
        )
        loop = np.array(
            [
                estimate_symmetric_difference_cross(a, ba, bb, SKETCH_SIZE)
                for a, ba, bb in zip(alphas, betas_a, betas_b)
            ]
        )
        assert np.array_equal(bulk, loop)

    def test_scalar_beta_broadcasts(self):
        alphas = np.array(ALPHAS)
        bulk = estimate_symmetric_difference_arrays(alphas, 0.125, 0.125, SKETCH_SIZE)
        loop = np.array(
            [
                estimate_symmetric_difference_cross(a, 0.125, 0.125, SKETCH_SIZE)
                for a in alphas
            ]
        )
        assert np.array_equal(bulk, loop)

    def test_strict_mode_raises_on_any_saturated_entry(self):
        with pytest.raises(EstimationError):
            estimate_symmetric_difference_arrays(
                np.array([0.1, 0.5]), 0.0, 0.0, SKETCH_SIZE, strict=True
            )

    def test_out_of_range_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference_arrays(
                np.array([0.2, 1.5]), 0.0, 0.0, SKETCH_SIZE
            )

    def test_nan_rejected_like_the_scalar_validators(self):
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference_arrays(
                np.array([0.2, float("nan")]), 0.0, 0.0, SKETCH_SIZE
            )
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference_arrays(
                np.array([0.2]), float("nan"), 0.0, SKETCH_SIZE
            )

    def test_out_of_range_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference_arrays(
                np.array([0.2]), -0.1, 0.0, SKETCH_SIZE
            )

    def test_invalid_sketch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference_arrays(np.array([0.2]), 0.0, 0.0, 0)

    def test_empty_input(self):
        result = estimate_symmetric_difference_arrays(
            np.array([]), 0.1, 0.1, SKETCH_SIZE
        )
        assert result.shape == (0,)


class TestCommonItemsArrays:
    def test_matches_scalar_loop_bitwise(self):
        alphas, betas_a, betas_b, cards_a, cards_b = _pair_grid()
        bulk = estimate_common_items_arrays(
            alphas, betas_a, betas_b, SKETCH_SIZE, cards_a, cards_b
        )
        loop = np.array(
            [
                estimate_common_items_cross(a, ba, bb, SKETCH_SIZE, ca, cb)
                for a, ba, bb, ca, cb in zip(alphas, betas_a, betas_b, cards_a, cards_b)
            ]
        )
        assert np.array_equal(bulk, loop)

    def test_unclamped_matches_scalar(self):
        alphas, betas_a, betas_b, cards_a, cards_b = _pair_grid()
        bulk = estimate_common_items_arrays(
            alphas, betas_a, betas_b, SKETCH_SIZE, cards_a, cards_b, clamp=False
        )
        loop = np.array(
            [
                estimate_common_items_cross(
                    a, ba, bb, SKETCH_SIZE, ca, cb, clamp=False
                )
                for a, ba, bb, ca, cb in zip(alphas, betas_a, betas_b, cards_a, cards_b)
            ]
        )
        assert np.array_equal(bulk, loop)

    def test_negative_cardinalities_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_common_items_arrays(
                np.array([0.1]), 0.0, 0.0, SKETCH_SIZE, np.array([-1]), np.array([2])
            )


class TestJaccardArrays:
    def test_matches_scalar_loop_bitwise(self):
        alphas, betas_a, betas_b, cards_a, cards_b = _pair_grid()
        bulk = estimate_jaccard_arrays(
            alphas, betas_a, betas_b, SKETCH_SIZE, cards_a, cards_b
        )
        loop = np.array(
            [
                estimate_jaccard_cross(a, ba, bb, SKETCH_SIZE, ca, cb)
                for a, ba, bb, ca, cb in zip(alphas, betas_a, betas_b, cards_a, cards_b)
            ]
        )
        assert np.array_equal(bulk, loop)

    def test_empty_sets_give_jaccard_one(self):
        result = estimate_jaccard_arrays(
            np.array([0.0]), 0.0, 0.0, SKETCH_SIZE, np.array([0]), np.array([0])
        )
        assert result.tolist() == [1.0]

    def test_results_always_in_unit_interval(self):
        alphas, betas_a, betas_b, cards_a, cards_b = _pair_grid()
        bulk = estimate_jaccard_arrays(
            alphas, betas_a, betas_b, SKETCH_SIZE, cards_a, cards_b
        )
        assert float(bulk.min()) >= 0.0
        assert float(bulk.max()) <= 1.0
