"""Tests of the package-level public API (imports, __all__, version)."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    @pytest.mark.parametrize(
        "name",
        [
            "VirtualOddSketch",
            "SharedBitArray",
            "MemoryBudget",
            "DynamicMinHash",
            "DynamicOPH",
            "RandomPairingSketch",
            "ExactSimilarityTracker",
            "SimilarityEngine",
            "GraphStream",
            "StreamElement",
            "Action",
            "load_dataset",
            "AccuracyExperiment",
            "RuntimeExperiment",
        ],
    )
    def test_headline_classes_exported(self, name):
        assert name in repro.__all__

    def test_subpackages_importable(self):
        for module_name in [
            "repro.hashing",
            "repro.streams",
            "repro.baselines",
            "repro.core",
            "repro.similarity",
            "repro.evaluation",
            "repro.analysis",
            "repro.cli",
        ]:
            assert importlib.import_module(module_name) is not None

    def test_sketch_registry_names_match_paper(self):
        from repro import sketch_registry

        assert {"MinHash", "OPH", "RP", "VOS", "Exact"} <= set(sketch_registry())

    def test_similarity_search_helpers_exported(self):
        from repro.similarity import (  # noqa: F401
            nearest_neighbours,
            pairs_above_threshold,
            top_k_similar_pairs,
        )

    def test_regular_graph_helpers_exported(self):
        from repro.streams import RegularEdge, RegularGraphSimilarity  # noqa: F401


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core.vos",
            "repro.core.estimators",
            "repro.baselines.minhash",
            "repro.baselines.oph",
            "repro.baselines.random_pairing",
            "repro.streams.stream",
            "repro.streams.datasets",
            "repro.evaluation.runner",
            "repro.evaluation.metrics",
            "repro.similarity.search",
            "repro.streams.regular",
        ],
    )
    def test_every_public_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_core_classes_have_docstrings(self):
        from repro import DynamicMinHash, DynamicOPH, VirtualOddSketch

        for cls in (VirtualOddSketch, DynamicMinHash, DynamicOPH):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 60
