"""Tests for repro.service.snapshot: bit-exact round trips and corruption paths."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.vos import VirtualOddSketch
from repro.exceptions import SnapshotError
from repro.service.sharding import ShardedVOS
from repro.service.snapshot import (
    MAGIC,
    dumps_snapshot,
    load_snapshot,
    loads_snapshot,
    save_snapshot,
)
from repro.streams.edge import Action, StreamElement


@pytest.fixture(scope="module")
def fed_vos(small_dynamic_stream):
    vos = VirtualOddSketch(shared_array_bits=8192, virtual_sketch_size=128, seed=4)
    for element in small_dynamic_stream.prefix(3000):
        vos.process(element)
    return vos


@pytest.fixture(scope="module")
def fed_sharded(small_dynamic_stream):
    sketch = ShardedVOS(3, 4096, 128, seed=4)
    for element in small_dynamic_stream.prefix(3000):
        sketch.process(element)
    return sketch


def _assert_same_vos_state(a: VirtualOddSketch, b: VirtualOddSketch) -> None:
    assert np.array_equal(a.shared_array._bits._bits, b.shared_array._bits._bits)
    assert a.shared_array.ones_count == b.shared_array.ones_count
    assert a._cardinalities == b._cardinalities


class TestVosRoundTrip:
    def test_bit_exact_state_and_estimates(self, fed_vos, tmp_path):
        path = tmp_path / "vos.snapshot"
        save_snapshot(fed_vos, path)
        restored = load_snapshot(path)
        assert isinstance(restored, VirtualOddSketch)
        _assert_same_vos_state(fed_vos, restored)
        users = sorted(fed_vos.users())[:6]
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                assert fed_vos.estimate_jaccard(user_a, user_b) == restored.estimate_jaccard(
                    user_a, user_b
                )
                assert fed_vos.estimate_common_items(
                    user_a, user_b
                ) == restored.estimate_common_items(user_a, user_b)

    def test_restored_sketch_keeps_ingesting_identically(self, fed_vos):
        restored = loads_snapshot(dumps_snapshot(fed_vos))
        follow_up = [StreamElement(1, 9000 + i, Action.INSERT) for i in range(50)]
        reference = loads_snapshot(dumps_snapshot(fed_vos))
        for element in follow_up:
            reference.process(element)
        restored.process_batch(follow_up)
        _assert_same_vos_state(reference, restored)

    def test_empty_sketch_round_trips(self):
        vos = VirtualOddSketch(shared_array_bits=64, virtual_sketch_size=8, seed=0)
        restored = loads_snapshot(dumps_snapshot(vos))
        _assert_same_vos_state(vos, restored)


class TestShardedRoundTrip:
    def test_bit_exact_per_shard(self, fed_sharded, tmp_path):
        path = tmp_path / "sharded.snapshot"
        save_snapshot(fed_sharded, path)
        restored = load_snapshot(path)
        assert isinstance(restored, ShardedVOS)
        assert restored.num_shards == fed_sharded.num_shards
        for original, copy in zip(fed_sharded.shards, restored.shards):
            _assert_same_vos_state(original, copy)
        users = sorted(fed_sharded.users())[:6]
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                assert fed_sharded.estimate_jaccard(
                    user_a, user_b
                ) == restored.estimate_jaccard(user_a, user_b)


class TestCorruptionPaths:
    def test_bad_magic(self, fed_vos):
        blob = dumps_snapshot(fed_vos)
        with pytest.raises(SnapshotError, match="magic"):
            loads_snapshot(b"NOTASNAP" + blob[len(MAGIC) :])

    def test_version_mismatch(self, fed_vos):
        blob = bytearray(dumps_snapshot(fed_vos))
        blob[len(MAGIC) : len(MAGIC) + 4] = struct.pack("<I", 99)
        with pytest.raises(SnapshotError, match="version 99"):
            loads_snapshot(bytes(blob))

    def test_flipped_payload_byte_fails_crc(self, fed_vos):
        blob = bytearray(dumps_snapshot(fed_vos))
        blob[-1] ^= 0xFF
        with pytest.raises(SnapshotError, match="CRC"):
            loads_snapshot(bytes(blob))

    def test_truncated_payload(self, fed_vos):
        blob = dumps_snapshot(fed_vos)
        with pytest.raises(SnapshotError):
            loads_snapshot(blob[:-10])

    def test_truncated_header(self, fed_vos):
        blob = dumps_snapshot(fed_vos)
        with pytest.raises(SnapshotError):
            loads_snapshot(blob[: len(MAGIC) + 10])

    def test_empty_bytes(self):
        with pytest.raises(SnapshotError):
            loads_snapshot(b"")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="not found"):
            load_snapshot(tmp_path / "does-not-exist.snapshot")

    def test_unsupported_sketch_type(self):
        with pytest.raises(SnapshotError, match="only VirtualOddSketch"):
            dumps_snapshot(object())

    def test_valid_json_header_with_missing_keys(self):
        """A structurally valid but wrong header must raise SnapshotError,
        not leak KeyError (the CRC only covers the payload)."""
        import json
        import zlib

        header = json.dumps({"crc32": zlib.crc32(b"")}).encode("utf-8")
        blob = MAGIC + struct.pack("<II", 1, len(header)) + header
        with pytest.raises(SnapshotError, match="malformed"):
            loads_snapshot(blob)

    def test_non_object_json_header(self):
        import json

        header = json.dumps([1, 2, 3]).encode("utf-8")
        blob = MAGIC + struct.pack("<II", 1, len(header)) + header
        with pytest.raises(SnapshotError, match="not a JSON object"):
            loads_snapshot(blob)

    def test_unknown_kind(self, fed_vos):
        import json

        blob = dumps_snapshot(fed_vos)
        version, header_length = struct.unpack_from("<II", blob, len(MAGIC))
        start = len(MAGIC) + 8
        header = json.loads(blob[start : start + header_length])
        header["kind"] = "FutureSketch"
        new_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
        rebuilt = (
            MAGIC
            + struct.pack("<II", version, len(new_header))
            + new_header
            + blob[start + header_length :]
        )
        with pytest.raises(SnapshotError, match="unknown snapshot kind"):
            loads_snapshot(rebuilt)

    def test_unsupported_user_id_types_are_rejected(self):
        vos = VirtualOddSketch(shared_array_bits=64, virtual_sketch_size=8)
        vos.process(StreamElement((1, 2), 1, Action.INSERT))
        with pytest.raises(SnapshotError, match="user id"):
            dumps_snapshot(vos)


def _rebuild_with_header(blob: bytes, mutate) -> bytes:
    """Re-pack a snapshot after applying ``mutate`` to its JSON header."""
    import json

    version, header_length = struct.unpack_from("<II", blob, len(MAGIC))
    start = len(MAGIC) + 8
    header = json.loads(blob[start : start + header_length])
    mutate(header)
    new_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return (
        MAGIC
        + struct.pack("<II", version, len(new_header))
        + new_header
        + blob[start + header_length :]
    )


class TestHeaderCorruptionPaths:
    """Header-level corruption the payload CRC cannot catch."""

    def test_unknown_section_name(self, fed_vos):
        def rename(header):
            header["sections"][0]["name"] = "mystery-section"

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_vos), rename)
        with pytest.raises(SnapshotError, match="missing section"):
            loads_snapshot(rebuilt)

    def test_unknown_section_name_sharded(self, fed_sharded):
        def rename(header):
            header["sections"][2]["name"] = "shard0/extras"

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_sharded), rename)
        with pytest.raises(SnapshotError, match="missing section"):
            loads_snapshot(rebuilt)

    def test_section_table_overruns_payload(self, fed_vos):
        def inflate(header):
            header["sections"][-1]["bytes"] += 16

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_vos), inflate)
        with pytest.raises(SnapshotError, match="sections describe"):
            loads_snapshot(rebuilt)

    def test_section_table_underruns_payload(self, fed_vos):
        def shrink(header):
            header["sections"][-1]["bytes"] -= 8

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_vos), shrink)
        with pytest.raises(SnapshotError, match="sections describe"):
            loads_snapshot(rebuilt)

    def test_mismatched_shard_count(self, fed_sharded):
        def lie(header):
            header["parameters"]["num_shards"] += 1

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_sharded), lie)
        with pytest.raises(SnapshotError, match="shard count"):
            loads_snapshot(rebuilt)


class TestObjectUserIds:
    """String and mixed user ids persist via the JSON id-column encoding."""

    def test_string_ids_round_trip(self):
        vos = VirtualOddSketch(shared_array_bits=4096, virtual_sketch_size=64, seed=2)
        for user in ("alice", "bob", "carol"):
            for item in range(15):
                vos.process(StreamElement(user, f"item-{item}", Action.INSERT))
        vos.process(StreamElement("alice", "item-3", Action.DELETE))
        restored = loads_snapshot(dumps_snapshot(vos))
        _assert_same_vos_state(vos, restored)
        assert restored.estimate_jaccard("alice", "bob") == vos.estimate_jaccard(
            "alice", "bob"
        )

    def test_mixed_and_big_int_ids_round_trip(self):
        vos = VirtualOddSketch(shared_array_bits=4096, virtual_sketch_size=64, seed=2)
        users = [7, "seven", 2**70]
        for user in users:
            for item in range(10):
                vos.process(StreamElement(user, item, Action.INSERT))
        restored = loads_snapshot(dumps_snapshot(vos))
        _assert_same_vos_state(vos, restored)
        for user in users:
            assert restored.cardinality(user) == vos.cardinality(user)
            assert type(user) in (int, str)  # sanity: ids keep their types
            assert user in restored._cardinalities

    def test_sharded_string_ids_round_trip(self, tmp_path):
        sketch = ShardedVOS(3, 2048, 64, seed=5)
        for user in ("u1", "u2", "u3", "u4"):
            for item in range(12):
                sketch.process(StreamElement(user, item, Action.INSERT))
        path = tmp_path / "strings.vos"
        save_snapshot(sketch, path)
        restored = load_snapshot(path)
        for original, copy in zip(sketch.shards, restored.shards):
            _assert_same_vos_state(original, copy)


class TestFormatV2:
    def test_writes_version_2_with_checkpoint_id(self, fed_vos, tmp_path):
        from repro.service.snapshot import FORMAT_VERSION, load_snapshot_state, snapshot_info

        path = tmp_path / "v2.vos"
        save_snapshot(fed_vos, path)
        info = snapshot_info(path)
        assert info["format_version"] == FORMAT_VERSION == 2
        assert len(info["checkpoint_id"]) == 16
        state = load_snapshot_state(path)
        assert state.version == 2
        assert state.checkpoint_id == info["checkpoint_id"]
        assert state.extras == {}

    def test_v1_snapshots_still_load(self, fed_vos):
        """A faithful v1 blob (v1 header keys, same core sections) restores."""
        import json

        blob = dumps_snapshot(fed_vos)
        version, header_length = struct.unpack_from("<II", blob, len(MAGIC))
        start = len(MAGIC) + 8
        header = json.loads(blob[start : start + header_length])
        # v1 headers had no checkpoint id, no extras table and no encodings.
        del header["checkpoint_id"]
        del header["extras"]
        for entry in header["sections"]:
            entry.pop("encoding", None)
        v1_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
        v1_blob = (
            MAGIC
            + struct.pack("<II", 1, len(v1_header))
            + v1_header
            + blob[start + header_length :]
        )
        from repro.service.snapshot import loads_snapshot_state

        state = loads_snapshot_state(v1_blob)
        assert state.version == 1
        assert state.checkpoint_id == ""
        _assert_same_vos_state(fed_vos, state.sketch)

    def test_unknown_extra_sections_are_skipped(self, fed_vos):
        from repro.service.snapshot import (
            loads_snapshot_state,
            register_snapshot_section,
        )

        register_snapshot_section(
            "test/extra", encode=lambda state: state, decode=lambda data: data
        )
        blob = dumps_snapshot(fed_vos, extras={"test/extra": b"hello"})
        state = loads_snapshot_state(blob)
        assert state.extras == {"test/extra": b"hello"}
        # A build without the codec must skip the section, not fail.
        from repro.service import snapshot as snapshot_module

        del snapshot_module._EXTRA_SECTIONS["test/extra"]
        state = loads_snapshot_state(blob)
        assert state.extras == {}
        assert state.unknown_extras == ("test/extra",)

    def test_unregistered_extra_name_rejected_at_write(self, fed_vos):
        with pytest.raises(SnapshotError, match="no snapshot section registered"):
            dumps_snapshot(fed_vos, extras={"no/such/section": object()})

    def test_extras_are_covered_by_the_payload_crc(self, fed_vos):
        from repro.service.snapshot import (
            loads_snapshot_state,
            register_snapshot_section,
        )

        register_snapshot_section(
            "test/crc", encode=lambda state: state, decode=lambda data: data
        )
        try:
            blob = bytearray(dumps_snapshot(fed_vos, extras={"test/crc": b"payload"}))
            blob[-2] ^= 0xFF  # lands inside the extra section
            with pytest.raises(SnapshotError, match="CRC"):
                loads_snapshot_state(bytes(blob))
        finally:
            from repro.service import snapshot as snapshot_module

            del snapshot_module._EXTRA_SECTIONS["test/crc"]


class TestAtomicWrites:
    def test_crash_mid_write_never_shadows_a_good_snapshot(
        self, fed_vos, tmp_path, monkeypatch
    ):
        """A failure before os.replace leaves the previous snapshot intact."""
        import os

        path = tmp_path / "state.vos"
        save_snapshot(fed_vos, path)
        good = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_snapshot(fed_vos, path)
        monkeypatch.undo()
        assert path.read_bytes() == good
        # No temp file survives the failed attempt.
        assert [p.name for p in tmp_path.iterdir()] == ["state.vos"]
        _assert_same_vos_state(fed_vos, load_snapshot(path))

    def test_truncated_temp_style_file_never_replaces_target(self, fed_vos, tmp_path):
        """Even a torn write of the final bytes is caught by the CRC on load."""
        path = tmp_path / "state.vos"
        save_snapshot(fed_vos, path)
        torn = dumps_snapshot(fed_vos)[:-20]
        (tmp_path / "torn.vos").write_bytes(torn)
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "torn.vos")
        _assert_same_vos_state(fed_vos, load_snapshot(path))
