"""Tests for repro.service.snapshot: bit-exact round trips and corruption paths."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.vos import VirtualOddSketch
from repro.exceptions import SnapshotError
from repro.service.sharding import ShardedVOS
from repro.service.snapshot import (
    MAGIC,
    dumps_snapshot,
    load_snapshot,
    loads_snapshot,
    save_snapshot,
)
from repro.streams.edge import Action, StreamElement


@pytest.fixture(scope="module")
def fed_vos(small_dynamic_stream):
    vos = VirtualOddSketch(shared_array_bits=8192, virtual_sketch_size=128, seed=4)
    for element in small_dynamic_stream.prefix(3000):
        vos.process(element)
    return vos


@pytest.fixture(scope="module")
def fed_sharded(small_dynamic_stream):
    sketch = ShardedVOS(3, 4096, 128, seed=4)
    for element in small_dynamic_stream.prefix(3000):
        sketch.process(element)
    return sketch


def _assert_same_vos_state(a: VirtualOddSketch, b: VirtualOddSketch) -> None:
    assert np.array_equal(a.shared_array._bits._bits, b.shared_array._bits._bits)
    assert a.shared_array.ones_count == b.shared_array.ones_count
    assert a._cardinalities == b._cardinalities


class TestVosRoundTrip:
    def test_bit_exact_state_and_estimates(self, fed_vos, tmp_path):
        path = tmp_path / "vos.snapshot"
        save_snapshot(fed_vos, path)
        restored = load_snapshot(path)
        assert isinstance(restored, VirtualOddSketch)
        _assert_same_vos_state(fed_vos, restored)
        users = sorted(fed_vos.users())[:6]
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                assert fed_vos.estimate_jaccard(user_a, user_b) == restored.estimate_jaccard(
                    user_a, user_b
                )
                assert fed_vos.estimate_common_items(
                    user_a, user_b
                ) == restored.estimate_common_items(user_a, user_b)

    def test_restored_sketch_keeps_ingesting_identically(self, fed_vos):
        restored = loads_snapshot(dumps_snapshot(fed_vos))
        follow_up = [StreamElement(1, 9000 + i, Action.INSERT) for i in range(50)]
        reference = loads_snapshot(dumps_snapshot(fed_vos))
        for element in follow_up:
            reference.process(element)
        restored.process_batch(follow_up)
        _assert_same_vos_state(reference, restored)

    def test_empty_sketch_round_trips(self):
        vos = VirtualOddSketch(shared_array_bits=64, virtual_sketch_size=8, seed=0)
        restored = loads_snapshot(dumps_snapshot(vos))
        _assert_same_vos_state(vos, restored)


class TestShardedRoundTrip:
    def test_bit_exact_per_shard(self, fed_sharded, tmp_path):
        path = tmp_path / "sharded.snapshot"
        save_snapshot(fed_sharded, path)
        restored = load_snapshot(path)
        assert isinstance(restored, ShardedVOS)
        assert restored.num_shards == fed_sharded.num_shards
        for original, copy in zip(fed_sharded.shards, restored.shards):
            _assert_same_vos_state(original, copy)
        users = sorted(fed_sharded.users())[:6]
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                assert fed_sharded.estimate_jaccard(
                    user_a, user_b
                ) == restored.estimate_jaccard(user_a, user_b)


class TestCorruptionPaths:
    def test_bad_magic(self, fed_vos):
        blob = dumps_snapshot(fed_vos)
        with pytest.raises(SnapshotError, match="magic"):
            loads_snapshot(b"NOTASNAP" + blob[len(MAGIC) :])

    def test_version_mismatch(self, fed_vos):
        blob = bytearray(dumps_snapshot(fed_vos))
        blob[len(MAGIC) : len(MAGIC) + 4] = struct.pack("<I", 99)
        with pytest.raises(SnapshotError, match="version 99"):
            loads_snapshot(bytes(blob))

    def test_flipped_payload_byte_fails_crc(self, fed_vos):
        blob = bytearray(dumps_snapshot(fed_vos))
        blob[-1] ^= 0xFF
        with pytest.raises(SnapshotError, match="CRC"):
            loads_snapshot(bytes(blob))

    def test_truncated_payload(self, fed_vos):
        blob = dumps_snapshot(fed_vos)
        with pytest.raises(SnapshotError):
            loads_snapshot(blob[:-10])

    def test_truncated_header(self, fed_vos):
        blob = dumps_snapshot(fed_vos)
        with pytest.raises(SnapshotError):
            loads_snapshot(blob[: len(MAGIC) + 10])

    def test_empty_bytes(self):
        with pytest.raises(SnapshotError):
            loads_snapshot(b"")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="not found"):
            load_snapshot(tmp_path / "does-not-exist.snapshot")

    def test_unsupported_sketch_type(self):
        with pytest.raises(SnapshotError, match="only VirtualOddSketch"):
            dumps_snapshot(object())

    def test_valid_json_header_with_missing_keys(self):
        """A structurally valid but wrong header must raise SnapshotError,
        not leak KeyError (the CRC only covers the payload)."""
        import json
        import zlib

        header = json.dumps({"crc32": zlib.crc32(b"")}).encode("utf-8")
        blob = MAGIC + struct.pack("<II", 1, len(header)) + header
        with pytest.raises(SnapshotError, match="malformed"):
            loads_snapshot(blob)

    def test_non_object_json_header(self):
        import json

        header = json.dumps([1, 2, 3]).encode("utf-8")
        blob = MAGIC + struct.pack("<II", 1, len(header)) + header
        with pytest.raises(SnapshotError, match="not a JSON object"):
            loads_snapshot(blob)

    def test_unknown_kind(self, fed_vos):
        import json

        blob = dumps_snapshot(fed_vos)
        version, header_length = struct.unpack_from("<II", blob, len(MAGIC))
        start = len(MAGIC) + 8
        header = json.loads(blob[start : start + header_length])
        header["kind"] = "FutureSketch"
        new_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
        rebuilt = (
            MAGIC
            + struct.pack("<II", version, len(new_header))
            + new_header
            + blob[start + header_length :]
        )
        with pytest.raises(SnapshotError, match="unknown snapshot kind"):
            loads_snapshot(rebuilt)

    def test_non_integer_users_are_rejected(self):
        vos = VirtualOddSketch(shared_array_bits=64, virtual_sketch_size=8)
        vos.process(StreamElement("alice", 1, Action.INSERT))
        with pytest.raises(SnapshotError, match="integer user"):
            dumps_snapshot(vos)


def _rebuild_with_header(blob: bytes, mutate) -> bytes:
    """Re-pack a snapshot after applying ``mutate`` to its JSON header."""
    import json

    version, header_length = struct.unpack_from("<II", blob, len(MAGIC))
    start = len(MAGIC) + 8
    header = json.loads(blob[start : start + header_length])
    mutate(header)
    new_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return (
        MAGIC
        + struct.pack("<II", version, len(new_header))
        + new_header
        + blob[start + header_length :]
    )


class TestHeaderCorruptionPaths:
    """Header-level corruption the payload CRC cannot catch."""

    def test_unknown_section_name(self, fed_vos):
        def rename(header):
            header["sections"][0]["name"] = "mystery-section"

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_vos), rename)
        with pytest.raises(SnapshotError, match="missing section"):
            loads_snapshot(rebuilt)

    def test_unknown_section_name_sharded(self, fed_sharded):
        def rename(header):
            header["sections"][2]["name"] = "shard0/extras"

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_sharded), rename)
        with pytest.raises(SnapshotError, match="missing section"):
            loads_snapshot(rebuilt)

    def test_section_table_overruns_payload(self, fed_vos):
        def inflate(header):
            header["sections"][-1]["bytes"] += 16

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_vos), inflate)
        with pytest.raises(SnapshotError, match="sections describe"):
            loads_snapshot(rebuilt)

    def test_section_table_underruns_payload(self, fed_vos):
        def shrink(header):
            header["sections"][-1]["bytes"] -= 8

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_vos), shrink)
        with pytest.raises(SnapshotError, match="sections describe"):
            loads_snapshot(rebuilt)

    def test_mismatched_shard_count(self, fed_sharded):
        def lie(header):
            header["parameters"]["num_shards"] += 1

        rebuilt = _rebuild_with_header(dumps_snapshot(fed_sharded), lie)
        with pytest.raises(SnapshotError, match="shard count"):
            loads_snapshot(rebuilt)
