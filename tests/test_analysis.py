"""Tests for the repro.analysis package."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bias import SamplingBiasReport, measure_sampling_bias
from repro.analysis.odd_model import expected_alpha, invert_expected_alpha
from repro.analysis.variance import (
    monte_carlo_estimator_moments,
    predicted_bias,
    predicted_standard_deviation,
)
from repro.exceptions import ConfigurationError


class TestOddModel:
    def test_zero_difference_zero_beta(self):
        assert expected_alpha(0, 128, 0.0) == 0.0

    def test_zero_difference_with_beta_gives_contamination_floor(self):
        beta = 0.1
        expected = (1 - (1 - 2 * beta) ** 2) / 2
        assert expected_alpha(0, 128, beta) == pytest.approx(expected)

    def test_alpha_monotone_in_difference(self):
        values = [expected_alpha(n, 256, 0.05) for n in (0, 10, 50, 200)]
        assert values == sorted(values)

    def test_alpha_saturates_below_half(self):
        assert expected_alpha(10**6, 64, 0.0) <= 0.5

    def test_exact_and_approximate_forms_agree_for_large_k(self):
        approx = expected_alpha(100, 8192, 0.1, exact=False)
        exact = expected_alpha(100, 8192, 0.1, exact=True)
        assert approx == pytest.approx(exact, rel=1e-3)

    def test_inversion_roundtrip(self):
        for n in (5, 50, 500):
            for beta in (0.0, 0.1, 0.3):
                alpha = expected_alpha(n, 4096, beta)
                assert invert_expected_alpha(alpha, 4096, beta) == pytest.approx(n, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            expected_alpha(-1, 64)
        with pytest.raises(ConfigurationError):
            expected_alpha(10, 0)
        with pytest.raises(ConfigurationError):
            invert_expected_alpha(0.2, 64, beta=0.6)


class TestVarianceAnalysis:
    def test_predicted_bias_beta_zero(self):
        k, n = 2048, 100
        expected = 1 / 8 - math.exp(4 * n / k) / 8
        assert predicted_bias(n, 0.0, k) == pytest.approx(expected)

    def test_predicted_std_nonnegative(self):
        assert predicted_standard_deviation(10, 0.01, 512) >= 0.0

    def test_monte_carlo_vs_closed_form_at_beta_zero(self):
        """The closed-form standard deviation treats the k xor bits as
        independent; under the true balls-into-bins model the bits are
        negatively correlated, so the closed form is a (conservative) upper
        bound.  The simulation must be unbiased and sit within that bound."""
        k = 1024
        cardinality_a = cardinality_b = 300
        common = 200
        n_delta = cardinality_a + cardinality_b - 2 * common
        moments = monte_carlo_estimator_moments(
            cardinality_a=cardinality_a,
            cardinality_b=cardinality_b,
            common=common,
            sketch_size=k,
            beta=0.0,
            trials=400,
            seed=3,
        )
        predicted_std = predicted_standard_deviation(n_delta, 0.0, k)
        assert moments.mean_estimate == pytest.approx(common, abs=3.0)
        assert 0.0 < moments.standard_deviation <= 1.2 * predicted_std

    def test_monte_carlo_with_contamination_is_noisier(self):
        kwargs = dict(
            cardinality_a=200, cardinality_b=200, common=150, sketch_size=512, trials=150, seed=5
        )
        clean = monte_carlo_estimator_moments(beta=0.0, **kwargs)
        noisy = monte_carlo_estimator_moments(beta=0.2, **kwargs)
        assert noisy.standard_deviation > clean.standard_deviation

    def test_monte_carlo_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            monte_carlo_estimator_moments(
                cardinality_a=5, cardinality_b=5, common=10, sketch_size=64, beta=0.0
            )
        with pytest.raises(ConfigurationError):
            monte_carlo_estimator_moments(
                cardinality_a=5, cardinality_b=5, common=2, sketch_size=64, beta=0.7
            )
        with pytest.raises(ConfigurationError):
            monte_carlo_estimator_moments(
                cardinality_a=5, cardinality_b=5, common=2, sketch_size=64, beta=0.1, trials=0
            )


class TestSamplingBias:
    @pytest.fixture(scope="class")
    def reports(self):
        return {
            rate: measure_sampling_bias(
                rate, baseline_registers=24, top_users=25, max_pairs=60, seed=2
            )
            for rate in (0.0, 0.5)
        }

    def test_report_structure(self, reports):
        report = reports[0.0]
        assert isinstance(report, SamplingBiasReport)
        assert set(report.mean_signed_error) == {"MinHash", "OPH", "RP", "VOS"}
        assert report.tracked_pairs > 0

    def test_deletion_fraction_increases_with_rate(self, reports):
        assert reports[0.5].deletion_fraction > reports[0.0].deletion_fraction

    def test_vos_bias_stays_small_under_deletions(self, reports):
        vos_bias = abs(reports[0.5].mean_signed_error["VOS"])
        assert vos_bias < 0.2

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            measure_sampling_bias(1.5)
