"""Tests for repro.baselines.oph."""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactSimilarityTracker
from repro.baselines.oph import DensificationStrategy, DynamicOPH
from repro.exceptions import ConfigurationError, UnknownUserError
from repro.streams.edge import Action, StreamElement


def _insert_sets(sketch, set_a, set_b, user_a=1, user_b=2):
    for item in set_a:
        sketch.process(StreamElement(user_a, item, Action.INSERT))
    for item in set_b:
        sketch.process(StreamElement(user_b, item, Action.INSERT))


class TestDynamicOPHInsertions:
    def test_identical_sets_have_jaccard_one(self):
        sketch = DynamicOPH(64, seed=1)
        items = set(range(200))
        _insert_sets(sketch, items, items)
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(1.0)

    def test_disjoint_sets_have_low_jaccard(self):
        sketch = DynamicOPH(64, seed=1)
        _insert_sets(sketch, set(range(0, 200)), set(range(200, 400)))
        assert sketch.estimate_jaccard(1, 2) < 0.05

    def test_partial_overlap_estimate_reasonable(self):
        sketch = DynamicOPH(256, seed=2)
        set_a = set(range(0, 400))
        set_b = set(range(200, 600))
        _insert_sets(sketch, set_a, set_b)
        true_jaccard = 200 / 600
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(true_jaccard, abs=0.12)

    def test_each_item_touches_exactly_one_bin(self):
        sketch = DynamicOPH(32, seed=3)
        sketch.process(StreamElement(1, 7, Action.INSERT))
        occupied = [item for item in sketch.bin_items(1) if item is not None]
        assert occupied == [7]

    def test_insertion_order_irrelevant(self):
        items = list(range(80))
        sketch_a = DynamicOPH(16, seed=5)
        sketch_b = DynamicOPH(16, seed=5)
        for item in items:
            sketch_a.process(StreamElement(1, item, Action.INSERT))
        for item in reversed(items):
            sketch_b.process(StreamElement(1, item, Action.INSERT))
        assert sketch_a.bin_items(1) == sketch_b.bin_items(1)


class TestDynamicOPHDeletions:
    def test_deleting_bin_minimum_empties_bin(self):
        sketch = DynamicOPH(8, seed=1)
        sketch.process(StreamElement(1, 5, Action.INSERT))
        sketch.process(StreamElement(1, 5, Action.DELETE))
        assert all(item is None for item in sketch.bin_items(1))

    def test_deleting_non_minimum_item_keeps_bins(self):
        sketch = DynamicOPH(4, seed=7)
        for item in range(60):
            sketch.process(StreamElement(1, item, Action.INSERT))
        before = sketch.bin_items(1)
        unsampled = next(item for item in range(60) if item not in set(before))
        sketch.process(StreamElement(1, unsampled, Action.DELETE))
        assert sketch.bin_items(1) == before

    def test_deletion_unknown_user_ignored(self):
        DynamicOPH(4)._process_deletion(StreamElement(9, 1, Action.DELETE))

    def test_bias_under_heavy_deletions(self):
        sketch = DynamicOPH(64, seed=4)
        exact = ExactSimilarityTracker()
        items = list(range(300))
        for item in items:
            for user in (1, 2):
                element = StreamElement(user, item, Action.INSERT)
                sketch.process(element)
                exact.process(element)
        for item in items[:250]:
            for user in (1, 2):
                element = StreamElement(user, item, Action.DELETE)
                sketch.process(element)
                exact.process(element)
        assert exact.estimate_jaccard(1, 2) == pytest.approx(1.0)
        # Emptied bins depress the estimate relative to the truth for at
        # least some similarity mass; it must not exceed 1 either.
        assert sketch.estimate_jaccard(1, 2) <= 1.0


class TestDensification:
    @pytest.mark.parametrize(
        "strategy",
        [DensificationStrategy.ROTATION_RIGHT, DensificationStrategy.RANDOM_DIRECTION],
    )
    def test_densification_fills_empty_bins(self, strategy):
        sketch = DynamicOPH(64, seed=2, densification=strategy)
        for item in range(10):  # far fewer items than bins -> many empties
            sketch.process(StreamElement(1, item, Action.INSERT))
        densified = sketch._densified_registers(1)
        assert all(entry is not None for entry in densified)

    def test_densification_of_all_empty_user_stays_empty(self):
        sketch = DynamicOPH(8, seed=2, densification=DensificationStrategy.ROTATION_RIGHT)
        sketch.process(StreamElement(1, 3, Action.INSERT))
        sketch.process(StreamElement(1, 3, Action.DELETE))
        assert all(entry is None for entry in sketch._densified_registers(1))

    def test_densified_identical_sparse_sets_agree(self):
        sketch = DynamicOPH(64, seed=3, densification=DensificationStrategy.ROTATION_RIGHT)
        items = set(range(5))
        _insert_sets(sketch, items, items)
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(1.0)

    def test_none_strategy_skips_jointly_empty_bins(self):
        sketch = DynamicOPH(64, seed=3, densification=DensificationStrategy.NONE)
        items = set(range(5))
        _insert_sets(sketch, items, items)
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(1.0)


class TestDynamicOPHMisc:
    def test_invalid_bin_count(self):
        with pytest.raises(ConfigurationError):
            DynamicOPH(0)

    def test_bin_items_unknown_user_raises(self):
        with pytest.raises(UnknownUserError):
            DynamicOPH(4).bin_items(1)

    def test_memory_accounting(self):
        sketch = DynamicOPH(20, register_bits=32)
        _insert_sets(sketch, {1}, {2})
        assert sketch.memory_bits() == 2 * 20 * 32

    def test_estimate_with_both_users_empty_is_zero(self):
        sketch = DynamicOPH(8, seed=1)
        sketch.process(StreamElement(1, 1, Action.INSERT))
        sketch.process(StreamElement(1, 1, Action.DELETE))
        sketch.process(StreamElement(2, 2, Action.INSERT))
        sketch.process(StreamElement(2, 2, Action.DELETE))
        assert sketch.estimate_jaccard(1, 2) == 0.0
        assert sketch.estimate_common_items(1, 2) == 0.0

    def test_name(self):
        assert DynamicOPH(4).name == "OPH"
