"""Tests for repro.obs.registry: metric kinds, thread safety, exporters.

The registry is the sink every instrumented subsystem reports into, so the
bar here is exactness: counters incremented from many threads must sum
correctly, histogram merges must never lose updates, and the streaming
quantiles must stay within one log-bucket (~12% relative width) of the true
sample quantile.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_json,
    render_prometheus,
    set_registry,
)
from repro.obs.registry import _ZERO_BUCKET, BUCKETS_PER_DECADE


@pytest.fixture
def registry():
    """A fresh registry swapped in as the process default, restored after."""
    previous = get_registry()
    fresh = set_registry(MetricsRegistry())
    yield fresh
    set_registry(previous)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c", unit="items")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert counter.snapshot() == {"value": 42, "unit": "items"}

    def test_reset(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0

    def test_concurrent_increments_are_exact(self):
        counter = Counter("c")
        threads = 8
        per_thread = 10_000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == threads * per_thread


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g", unit="ratio")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_reset(self):
        gauge = Gauge("g")
        gauge.set(9.0)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = Histogram("h", unit="seconds")
        values = [0.001, 0.01, 0.1, 1.0, 10.0]
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert histogram.sum == pytest.approx(sum(values))
        assert histogram.min == min(values)
        assert histogram.max == max(values)

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert histogram.min is None and histogram.max is None
        assert histogram.quantile(0.5) is None
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0 and snapshot["p99"] is None

    def test_invalid_quantile_rejected(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_non_positive_values_share_zero_bucket(self):
        histogram = Histogram("h")
        histogram.observe(0.0)
        histogram.observe(-3.0)
        assert histogram._bucket_key(0.0) == _ZERO_BUCKET
        assert histogram.count == 2
        assert histogram.quantile(0.5) == 0.0  # zero bucket reports 0.0
        assert histogram.min == -3.0
        assert histogram.max == 0.0

    def test_quantiles_within_one_bucket_of_true(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-6.0, sigma=1.5, size=5000)
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(float(value))
        # Relative bucket width is 10**(1/20) - 1 ~= 12.2%; allow one bucket
        # each side of the true sample quantile.
        width = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
        for q in (0.5, 0.9, 0.99):
            true = float(np.quantile(samples, q))
            reported = histogram.quantile(q)
            assert true / width <= reported <= true * width, (
                f"p{int(q * 100)}: reported {reported} vs true {true}"
            )

    def test_extreme_quantiles_clamped_to_envelope(self):
        histogram = Histogram("h")
        for value in (0.5, 0.7, 0.9):
            histogram.observe(value)
        assert histogram.quantile(0.0) >= histogram.min
        assert histogram.quantile(1.0) <= histogram.max

    def test_observe_many_matches_scalar_loop(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(scale=0.01, size=1000)
        values[::100] = 0.0  # exercise the zero bucket too
        scalar = Histogram("scalar")
        for value in values:
            scalar.observe(float(value))
        bulk = Histogram("bulk")
        bulk.observe_many(values)
        assert bulk.count == scalar.count
        assert bulk.sum == pytest.approx(scalar.sum)
        assert bulk.min == scalar.min
        assert bulk.max == scalar.max
        assert bulk._buckets == scalar._buckets

    def test_observe_many_empty_is_noop(self):
        histogram = Histogram("h")
        histogram.observe_many([])
        assert histogram.count == 0

    def test_concurrent_observations_never_lost(self):
        histogram = Histogram("h")
        threads = 8
        per_thread = 5_000

        def hammer(seed):
            rng = np.random.default_rng(seed)
            for _ in range(per_thread // 100):
                histogram.observe_many(rng.exponential(scale=0.01, size=100))

        workers = [threading.Thread(target=hammer, args=(seed,)) for seed in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert histogram.count == threads * per_thread
        assert sum(histogram._buckets.values()) == threads * per_thread


class TestMetricsRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("a", unit="items")
        second = registry.counter("a", unit="ignored-on-relookup")
        assert first is second
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_convenience_mutators(self, registry):
        registry.inc("c", 3, unit="items")
        registry.set_gauge("g", 2.5, unit="ratio")
        registry.observe("h", 0.25)
        registry.observe_many("hm", [1.0, 2.0], unit="items")
        assert registry.counter("c").value == 3
        assert registry.gauge("g").value == 2.5
        assert registry.histogram("h").count == 1
        assert registry.histogram("hm").count == 2

    def test_disabled_registry_drops_updates(self, registry):
        registry.disable()
        registry.inc("c", 3)
        registry.observe("h", 0.25)
        registry.set_gauge("g", 1.0)
        registry.observe_many("hm", [1.0])
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        registry.enable()
        registry.inc("c", 3)
        assert registry.counter("c").value == 3

    def test_reset_zeroes_in_place(self, registry):
        counter = registry.counter("c")
        registry.inc("c", 5)
        registry.observe("h", 1.0)
        registry.reset()
        assert registry.counter("c") is counter  # same object survives
        assert counter.value == 0
        assert registry.histogram("h").count == 0

    def test_snapshot_shape_and_ordering(self, registry):
        registry.inc("b.counter", 1)
        registry.inc("a.counter", 1)
        registry.observe("z.hist", 0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.counter", "b.counter"]
        hist = snapshot["histograms"]["z.hist"]
        assert set(hist) == {"count", "sum", "mean", "min", "max", "p50", "p90", "p99", "unit"}

    def test_set_registry_swaps_process_default(self):
        previous = get_registry()
        fresh = MetricsRegistry()
        try:
            assert set_registry(fresh) is fresh
            assert get_registry() is fresh
        finally:
            set_registry(previous)

    def test_cross_thread_counter_sums(self, registry):
        threads = 8
        per_thread = 2_000

        def hammer():
            for _ in range(per_thread):
                registry.inc("shared", 1)
                registry.observe("latency", 0.001)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("shared").value == threads * per_thread
        assert registry.histogram("latency").count == threads * per_thread


class TestExporters:
    def test_render_json_round_trips(self, registry):
        registry.inc("ingest.elements", 10, unit="elements")
        registry.observe("query.latency", 0.125)
        payload = json.loads(render_json(registry))
        assert payload["counters"]["ingest.elements"]["value"] == 10
        assert payload["histograms"]["query.latency"]["count"] == 1
        assert payload["enabled"] is True

    def test_render_prometheus_exposition(self, registry):
        registry.inc("ingest.elements", 10, unit="elements")
        registry.set_gauge("queue.depth", 3, unit="tasks")
        registry.observe("query.latency", 0.125)
        text = render_prometheus(registry)
        assert "# TYPE repro_ingest_elements counter" in text
        assert "repro_ingest_elements 10" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_query_latency summary" in text
        assert 'repro_query_latency{quantile="0.99"}' in text
        assert "repro_query_latency_count 1" in text
        # Metric names are sanitized to the Prometheus charset.
        assert "." not in text.split("repro_ingest_elements")[1].split()[0]

    def test_render_prometheus_empty_registry(self, registry):
        assert render_prometheus(registry).strip() == ""
