"""Tests for repro.core.estimators (the closed-form VOS inversion formulas)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.odd_model import expected_alpha
from repro.core.estimators import (
    estimate_common_items,
    estimate_jaccard,
    estimate_symmetric_difference,
    estimator_expectation,
    estimator_variance,
)
from repro.exceptions import ConfigurationError, EstimationError


class TestSymmetricDifferenceEstimator:
    def test_zero_alpha_zero_beta_gives_zero(self):
        assert estimate_symmetric_difference(0.0, 0.0, 1000) == 0.0

    def test_inverts_the_model_exactly(self):
        """n -> expected alpha -> estimator must return n (up to float error)."""
        k = 4096
        for n in (10, 100, 500, 1500):
            for beta in (0.0, 0.05, 0.2):
                alpha = expected_alpha(n, k, beta)
                estimate = estimate_symmetric_difference(alpha, beta, k)
                assert estimate == pytest.approx(n, rel=1e-9)

    def test_monotone_in_alpha(self):
        k, beta = 1024, 0.1
        estimates = [
            estimate_symmetric_difference(alpha, beta, k) for alpha in (0.2, 0.25, 0.3, 0.35)
        ]
        assert estimates == sorted(estimates)

    def test_never_negative(self):
        # alpha smaller than the contamination floor would give a negative
        # raw value; the estimator clamps at zero.
        assert estimate_symmetric_difference(0.0, 0.2, 256) == 0.0

    def test_saturated_alpha_clamps_by_default(self):
        value = estimate_symmetric_difference(0.5, 0.0, 128)
        assert math.isfinite(value)
        assert value > 0

    def test_saturated_alpha_raises_in_strict_mode(self):
        with pytest.raises(EstimationError):
            estimate_symmetric_difference(0.5, 0.0, 128, strict=True)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference(0.1, 0.1, 0)
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference(1.5, 0.1, 16)
        with pytest.raises(ConfigurationError):
            estimate_symmetric_difference(0.1, 1.5, 16)


class TestCommonItemsEstimator:
    def test_exact_recovery_from_model_alpha(self):
        k = 8192
        n_a, n_b, common = 300, 400, 120
        n_delta = n_a + n_b - 2 * common
        for beta in (0.0, 0.1, 0.3):
            alpha = expected_alpha(n_delta, k, beta)
            estimate = estimate_common_items(alpha, beta, k, n_a, n_b)
            assert estimate == pytest.approx(common, rel=1e-6)

    def test_clamped_into_feasible_range(self):
        # A wildly saturated alpha would give a hugely negative raw estimate.
        assert estimate_common_items(0.49, 0.0, 64, 10, 12) >= 0.0
        # A tiny alpha with large cardinalities cannot exceed min(n_a, n_b).
        assert estimate_common_items(0.0, 0.0, 64, 10, 500) <= 10.0

    def test_unclamped_raw_value_available(self):
        raw = estimate_common_items(0.49, 0.0, 64, 10, 12, clamp=False)
        assert raw < 0.0

    def test_identical_sets(self):
        k = 2048
        alpha = expected_alpha(0, k, 0.05)
        assert estimate_common_items(alpha, 0.05, k, 250, 250) == pytest.approx(250, rel=1e-6)

    def test_negative_cardinality_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_common_items(0.1, 0.1, 64, -1, 5)


class TestJaccardEstimator:
    def test_exact_recovery_from_model_alpha(self):
        k = 8192
        n_a, n_b, common = 300, 400, 120
        true_jaccard = common / (n_a + n_b - common)
        alpha = expected_alpha(n_a + n_b - 2 * common, k, 0.1)
        assert estimate_jaccard(alpha, 0.1, k, n_a, n_b) == pytest.approx(true_jaccard, rel=1e-6)

    def test_result_in_unit_interval(self):
        for alpha in (0.0, 0.2, 0.49):
            for beta in (0.0, 0.2, 0.4):
                value = estimate_jaccard(alpha, beta, 128, 50, 80)
                assert 0.0 <= value <= 1.0

    def test_two_empty_users(self):
        assert estimate_jaccard(0.0, 0.0, 64, 0, 0) == 1.0


class TestAnalyticalMoments:
    def test_expectation_bias_matches_paper_formula(self):
        """Spot-check the paper's E[ŝ] expression term by term."""
        n, beta, k = 100, 0.01, 4096
        one_minus = 1 - 2 * beta
        expected = (
            1 / 8
            - k * beta * math.exp(2 * n / k) / one_minus**2
            - math.exp(4 * n / k) / (8 * one_minus**4)
        )
        assert estimator_expectation(n, beta, k) == pytest.approx(expected)

    def test_expectation_bias_vanishes_as_beta_goes_to_zero(self):
        biases = [abs(estimator_expectation(100, beta, 4096)) for beta in (0.01, 0.001, 0.0001)]
        assert biases == sorted(biases, reverse=True)

    def test_variance_positive_for_typical_parameters(self):
        assert estimator_variance(200, 0.05, 4096) > 0.0

    def test_variance_matches_beta_zero_closed_form(self):
        """With beta = 0 the paper's variance reduces to k (e^{4n/k} - 1) / 16."""
        k, n = 1024, 200
        expected = k * (math.exp(4 * n / k) - 1) / 16
        assert estimator_variance(n, 0.0, k) == pytest.approx(expected)

    def test_expectation_matches_beta_zero_closed_form(self):
        k, n = 1024, 200
        expected = 1 / 8 - math.exp(4 * n / k) / 8
        assert estimator_expectation(n, 0.0, k) == pytest.approx(expected)

    def test_moments_diverge_at_half_beta(self):
        with pytest.raises(EstimationError):
            estimator_expectation(10, 0.5, 64)
        with pytest.raises(EstimationError):
            estimator_variance(10, 0.5, 64)

    def test_variance_grows_with_symmetric_difference(self):
        values = [estimator_variance(n, 0.02, 2048) for n in (50, 200, 800)]
        assert values == sorted(values)
