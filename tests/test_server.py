"""Integration tests: the serving daemon vs the in-process service.

The acceptance bar of the serving subsystem: every answer a daemon gives must
compare ``==`` with the in-process :class:`SimilarityService` answer for the
same question on the same state (including string user ids), epochs must swap
live under reader traffic without tearing a request, and shutdown must drain
cleanly — including the final journal checkpoint when the writer is bound to
a snapshot.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.core.vos import VirtualOddSketch
from repro.exceptions import ConfigurationError, ProtocolError, ServerError
from repro.server import ServingClient, ServingDaemon, protocol
from repro.service.journal import default_journal_path
from repro.service.service import SimilarityService
from repro.streams import Action, StreamElement


def _elements(users: range, items_per_user: int = 14) -> list[StreamElement]:
    return [
        StreamElement(user, user + offset, Action.INSERT)
        for user in users
        for offset in range(items_per_user)
    ]


def _service(seed: int = 11) -> SimilarityService:
    sketch = VirtualOddSketch(
        shared_array_bits=1 << 14, virtual_sketch_size=256, seed=seed
    )
    service = SimilarityService(sketch)
    service.ingest(_elements(range(25)))
    return service


@pytest.fixture
def daemon():
    with ServingDaemon(_service(), workers=3) as running:
        yield running


@pytest.fixture
def client(daemon):
    with ServingClient(*daemon.address) as connected:
        yield connected


class TestWireParity:
    def test_hello_carries_version_and_epoch(self, client):
        assert client.server_version == __version__
        assert client.epoch == 1

    def test_top_k_pairs_bit_identical(self, daemon, client):
        local = daemon.writer.top_k_pairs(k=8, prefilter_threshold=0.1)
        remote = client.top_k_pairs(k=8, prefilter_threshold=0.1)
        assert remote == local

    def test_nearest_bit_identical(self, daemon, client):
        assert client.nearest(5, k=6) == daemon.writer.top_k(5, k=6)

    def test_nearest_with_lsh_index_bit_identical(self, daemon, client):
        local = daemon.writer.top_k(7, k=5, index="lsh")
        assert client.nearest(7, k=5, index="lsh") == local

    def test_top_k_pairs_with_lsh_candidates_bit_identical(self, daemon, client):
        local = daemon.writer.top_k_pairs(k=6, candidates="lsh")
        assert client.top_k_pairs(k=6, candidates="lsh") == local

    def test_estimate_many_bit_identical(self, daemon, client):
        pairs = [(0, 1), (3, 4), (10, 20), (2, 24)]
        assert client.estimate_many(pairs) == daemon.writer.estimate_many(pairs)

    def test_single_estimate(self, daemon, client):
        assert client.estimate(1, 2) == daemon.writer.estimate(1, 2)

    def test_string_user_ids_survive_the_wire(self):
        sketch = VirtualOddSketch(
            shared_array_bits=1 << 13, virtual_sketch_size=128, seed=3
        )
        service = SimilarityService(sketch)
        users = ["alice", "bob", "carol", "dave"]
        service.ingest(
            [
                StreamElement(user, item, Action.INSERT)
                for index, user in enumerate(users)
                for item in range(index, index + 10)
            ]
        )
        with ServingDaemon(service, workers=2) as daemon:
            with ServingClient(*daemon.address) as client:
                local_pairs = service.top_k_pairs(k=4)
                assert client.top_k_pairs(k=4) == local_pairs
                wire = client.estimate_many([("alice", "bob")])[0]
                assert wire == service.estimate("alice", "bob")
                assert wire.user_a == "alice" and isinstance(wire.user_a, str)

    def test_ping_and_stats_and_metrics(self, client):
        assert client.ping()["epoch"] == 1
        stats = client.stats()
        assert stats["users"] == 25
        assert stats["server"]["epochs"]["current"] == 1
        metrics = client.metrics()
        assert "server.requests" in metrics["counters"]


class TestLiveIngest:
    def test_ingest_batch_publishes_a_new_epoch(self, daemon, client):
        before = client.top_k_pairs(k=3)
        report = client.ingest_batch(_elements(range(100, 102)))
        assert report["epoch"] == 2
        assert report["elements"] == 28
        assert client.epoch == 2
        after = client.nearest(100, k=2)
        assert after and all(100 in (p.user_a, p.user_b) for p in after)
        # the writer and the published epoch answer identically
        assert client.top_k_pairs(k=3) == daemon.writer.top_k_pairs(k=3)
        assert before  # old epoch's answer was served, not torn

    def test_unpublished_ingest_keeps_the_current_epoch(self, daemon, client):
        client.ingest_batch(_elements(range(200, 201)), publish=False)
        assert client.epoch == 1
        # readers still see the epoch-1 state: user 200 is unknown to them
        with pytest.raises(ServerError):
            client.nearest(200, k=1)
        # the next published batch folds both writes into one swap
        report = client.ingest_batch(_elements(range(201, 202)))
        assert report["epoch"] == 2
        assert client.nearest(200, k=1)

    def test_superseded_epoch_retires_after_its_readers_drain(self, daemon, client):
        client.ingest_batch(_elements(range(300, 301)))
        client.ping()  # any read pins the *new* epoch, letting the old retire
        stats = daemon.epochs.stats()
        assert stats["current"] == 2
        assert stats["retired"] == 1
        assert [entry["epoch"] for entry in stats["live"]] == [2]

    def test_concurrent_readers_never_tear_during_swaps(self, daemon):
        """Readers hammering the daemon through swaps see only whole epochs."""
        errors: list[Exception] = []
        observed: list[tuple[int, int]] = []
        stop = threading.Event()

        def reader() -> None:
            try:
                with ServingClient(*daemon.address) as client:
                    while not stop.is_set():
                        stats = client.stats()
                        # client.epoch tracks the epoch id of the last
                        # response, i.e. the epoch that answered stats()
                        observed.append((client.epoch, stats["elements_ingested"]))
                        client.top_k_pairs(k=3)
            except Exception as error:  # noqa: BLE001 - recorded for the assert
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        with ServingClient(*daemon.address) as writer:
            for round_index in range(4):
                writer.ingest_batch(_elements(range(500 + round_index, 501 + round_index)))
        time.sleep(0.1)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
        # an epoch id maps to exactly one elements_ingested value: no reader
        # ever saw an epoch with a half-applied batch
        by_epoch: dict[int, set[int]] = {}
        for epoch, ingested in observed:
            by_epoch.setdefault(epoch, set()).add(ingested)
        assert by_epoch
        for epoch, values in by_epoch.items():
            assert len(values) == 1, f"epoch {epoch} answered with torn states {values}"


class TestProtocolFailures:
    def test_version_mismatch_fails_the_handshake(self, daemon, monkeypatch):
        real = protocol.hello_payload
        monkeypatch.setattr(
            "repro.server.protocol.hello_payload",
            lambda epoch: {**real(epoch), "version": "0.0.0-mismatch"},
        )
        with pytest.raises(ProtocolError, match="version mismatch"):
            ServingClient(*daemon.address)

    def test_unknown_op_is_answered_with_an_error(self, daemon):
        with socket.create_connection(daemon.address, timeout=10) as sock:
            protocol.check_hello(protocol.recv_frame(sock))
            protocol.send_frame(sock, {"op": "nonsense"})
            response = protocol.recv_frame(sock)
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert "nonsense" in response["error"]["message"]

    def test_remote_error_surfaces_type_and_message(self, client):
        with pytest.raises(ServerError, match="requires a 'pairs' list") as info:
            client._call("estimate_many", pairs="oops")
        assert info.value.remote_type == "ProtocolError"

    def test_malformed_request_rows_fail_without_mutating_state(self, client):
        with pytest.raises(ServerError):
            client._call("ingest_batch", elements=[[1, 2, "x"]])
        assert client.stats()["elements_ingested"] == 350  # 25 users x 14 items

    def test_connection_survives_request_errors(self, client):
        with pytest.raises(ServerError):
            client.nearest(999999, k=1)  # unknown user
        assert client.ping()["epoch"] == client.epoch


class TestConcurrencyLimits:
    def test_more_connections_than_workers_are_all_served(self):
        """``workers`` bounds dispatch, not connections: a single-worker
        daemon must still answer five concurrently connected clients (a
        connection-per-worker model would strand all but the first until
        another client disconnects)."""
        with ServingDaemon(_service(), workers=1) as daemon:
            clients = [ServingClient(*daemon.address, timeout=10) for _ in range(5)]
            try:
                for connected in clients:
                    assert connected.ping()["version"] == __version__
                # interleaved round-robin requests on every live connection
                for _ in range(3):
                    for connected in clients:
                        assert len(connected.top_k_pairs(k=3)) == 3
            finally:
                for connected in clients:
                    connected.close()

    def test_connections_beyond_backlog_are_shed(self):
        """Connections past the ``backlog`` live cap are dropped at accept
        instead of hanging the client until its timeout."""
        with ServingDaemon(_service(), workers=2, backlog=2) as daemon:
            first = ServingClient(*daemon.address, timeout=10)
            second = ServingClient(*daemon.address, timeout=10)
            try:
                with pytest.raises((ProtocolError, OSError)):
                    ServingClient(*daemon.address, timeout=2)
                # the live connections are unaffected by the shed one
                assert first.ping()["version"] == __version__
                assert second.ping()["version"] == __version__
            finally:
                first.close()
                second.close()


class TestLifecycle:
    def test_client_driven_shutdown_drains(self):
        daemon = ServingDaemon(_service(), workers=2)
        daemon.start()
        with ServingClient(*daemon.address) as client:
            assert client.shutdown_server()["stopping"] is True
        daemon.wait()
        with pytest.raises(OSError):
            socket.create_connection(daemon.address, timeout=0.5)

    def test_shutdown_without_binding_skips_the_checkpoint(self):
        daemon = ServingDaemon(_service(), workers=2)
        daemon.start()
        daemon.shutdown()
        assert daemon.final_checkpoint is None

    def test_shutdown_checkpoints_a_bound_writer(self, tmp_path):
        path = tmp_path / "state.vos"
        service = _service()
        service.save(path)
        with ServingDaemon(service, workers=2) as daemon:
            with ServingClient(*daemon.address) as client:
                client.ingest_batch(_elements(range(700, 702)))
        checkpoint = daemon.final_checkpoint
        assert checkpoint is not None and checkpoint["kind"] in ("delta", "full")
        restored = SimilarityService.load(path)
        assert restored.top_k(700, k=1)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingDaemon(_service(), workers=0)

    def test_snapshot_op_checkpoints_on_demand(self, tmp_path, daemon, client):
        path = tmp_path / "ondemand.vos"
        result = client.snapshot(str(path))
        assert Path(result["path"]) == path
        assert path.exists()
        restored = SimilarityService.load(path)
        assert restored.top_k_pairs(k=3) == daemon.writer.top_k_pairs(k=3)


class TestSigtermSubprocess:
    def test_sigterm_drains_and_writes_a_final_checkpoint(self, tmp_path):
        """`repro serve` under SIGTERM: drain, checkpoint, exit 0."""
        snapshot = tmp_path / "state.vos"
        setup = textwrap.dedent(
            """
            from repro.core.vos import VirtualOddSketch
            from repro.service.service import SimilarityService
            from repro.streams import Action, StreamElement
            sketch = VirtualOddSketch(
                shared_array_bits=1 << 13, virtual_sketch_size=128, seed=5
            )
            service = SimilarityService(sketch)
            service.ingest(
                [StreamElement(u, u + i, Action.INSERT)
                 for u in range(10) for i in range(8)]
            )
            service.save(r"%s")
            """
            % snapshot
        )
        subprocess.run(
            [sys.executable, "-c", setup], check=True, env=_child_env(), timeout=60
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--snapshot",
                str(snapshot),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_child_env(),
        )
        try:
            port = _wait_for_port(process)
            with ServingClient("127.0.0.1", port) as client:
                client.ingest_batch(
                    [StreamElement(99, item, Action.INSERT) for item in range(9)]
                )
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "serve drained cleanly" in output
        # the post-ingest state survived via the shutdown checkpoint
        restored = SimilarityService.load(snapshot)
        assert restored.top_k(99, k=1)
        assert default_journal_path(snapshot).exists()


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _wait_for_port(process: subprocess.Popen, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "# serving" in line:
            return int(line.split(":")[-1].split(" ")[0])
        if process.poll() is not None:
            break
        time.sleep(0.01)
    raise AssertionError(f"daemon never reported its port (last line: {line!r})")
