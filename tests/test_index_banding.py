"""Tests for the LSH banding candidate index (:mod:`repro.index`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memory import MemoryBudget
from repro.similarity.engine import build_sketch
from repro.core.vos import VirtualOddSketch, packed_row_bytes
from repro.exceptions import ConfigurationError, UnknownUserError
from repro.index import BandedSketchIndex, IndexConfig, required_bands
from repro.index.banding import alpha_at_threshold
from repro.service import ServiceConfig, ShardedVOS, SimilarityService
from repro.similarity.search import (
    nearest_neighbours,
    pairs_above_threshold,
    top_k_similar_pairs,
)
from repro.streams.edge import Action, StreamElement


def clone_pool_elements(num_users=400, items_per_user=40, seed=11):
    """Every user paired with an identical clone: users (2i, 2i+1) share items."""
    rng = np.random.default_rng(seed)
    elements = []
    for pair in range(num_users // 2):
        items = rng.integers(0, 10**9, size=items_per_user)
        for user in (2 * pair, 2 * pair + 1):
            elements += [
                StreamElement(int(user), int(item), Action.INSERT) for item in items
            ]
    return elements


@pytest.fixture(scope="module")
def clone_vos():
    """A sparse single-array VOS holding 200 clone pairs."""
    vos = VirtualOddSketch(
        shared_array_bits=1 << 22, virtual_sketch_size=1024, seed=3
    )
    vos.process_batch(clone_pool_elements())
    return vos


@pytest.fixture(scope="module")
def clone_sharded():
    """The same clone workload hash-partitioned over four shards."""
    sketch = ShardedVOS(4, shard_array_bits=1 << 20, virtual_sketch_size=1024, seed=3)
    sketch.process_batch(clone_pool_elements())
    return sketch


class TestIndexConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            IndexConfig(bands=-1)
        with pytest.raises(ConfigurationError):
            IndexConfig(rows_per_band=0)
        with pytest.raises(ConfigurationError):
            IndexConfig(target_threshold=0.0)
        with pytest.raises(ConfigurationError):
            IndexConfig(confidence=1.0)
        with pytest.raises(ConfigurationError):
            IndexConfig(min_band_bits=0)
        with pytest.raises(ConfigurationError):
            IndexConfig(max_bucket=-3)

    def test_band_layout_must_fit_the_row(self, clone_vos):
        row_words = packed_row_bytes(clone_vos.virtual_sketch_size) // 8
        with pytest.raises(ConfigurationError):
            BandedSketchIndex(clone_vos, IndexConfig(rows_per_band=row_words + 1))
        with pytest.raises(ConfigurationError):
            BandedSketchIndex(clone_vos, IndexConfig(bands=row_words, rows_per_band=2))

    def test_rejects_sketches_without_packed_rows(self):
        budget = MemoryBudget(baseline_registers=8, num_users=10)
        with pytest.raises(ConfigurationError):
            BandedSketchIndex(build_sketch("MinHash", budget, seed=1))


class TestRequiredBands:
    def test_clamped_to_available(self):
        assert required_bands(0.5, 64, 16, 0.99, set_bit_fraction=0.05) == 16

    def test_monotone_in_confidence(self):
        low = required_bands(0.02, 64, 1024, 0.5, set_bit_fraction=0.05)
        high = required_bands(0.02, 64, 1024, 0.999, set_bit_fraction=0.05)
        assert 1 <= low <= high <= 1024

    def test_zero_density_uses_everything(self):
        assert required_bands(0.01, 64, 12, 0.9, set_bit_fraction=0.0) == 12

    def test_alpha_at_threshold_brackets(self):
        # Identical pair (threshold 1 would be the floor), dissimilar pair higher.
        near = alpha_at_threshold(0.99, 0.01, 0.01, 1024, 40.0)
        far = alpha_at_threshold(0.1, 0.01, 0.01, 1024, 40.0)
        assert 0.0 < near < far < 0.5


class TestCandidatePairs:
    def test_candidates_are_a_subset_of_all_pairs(self, clone_vos):
        pool = sorted(clone_vos.users())
        index = BandedSketchIndex(clone_vos)
        index_a, index_b = index.candidate_pairs(pool)
        n = len(pool)
        assert index_a.shape == index_b.shape
        assert (index_a < index_b).all()
        assert index_a.size == 0 or (0 <= index_a.min() and index_b.max() < n)
        assert index_a.size < n * (n - 1) // 2
        # No duplicates, lexicographic order.
        keys = index_a * n + index_b
        assert (np.diff(keys) > 0).all()

    def test_clone_pairs_are_proposed_and_ranked_identically(self, clone_vos):
        index = BandedSketchIndex(clone_vos)
        exact = top_k_similar_pairs(clone_vos, k=50)
        lsh = top_k_similar_pairs(clone_vos, k=50, candidates="lsh", index=index)
        assert [(p.user_a, p.user_b, p.jaccard) for p in exact] == [
            (p.user_a, p.user_b, p.jaccard) for p in lsh
        ]

    def test_candidates_deterministic_across_instances(self, clone_vos):
        pool = sorted(clone_vos.users())
        first = BandedSketchIndex(clone_vos).candidate_pairs(pool)
        second = BandedSketchIndex(clone_vos).candidate_pairs(pool)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_seed_changes_the_auto_banding(self, clone_vos):
        default_seed = BandedSketchIndex(clone_vos)
        override = BandedSketchIndex(clone_vos, IndexConfig(seed=99))
        assert default_seed.seed == clone_vos.seed
        assert override.seed == 99

    def test_pool_subset_restricts_ordinals(self, clone_vos):
        pool = sorted(clone_vos.users())[:40]
        index = BandedSketchIndex(clone_vos)
        index_a, index_b = index.candidate_pairs(pool)
        assert index_a.size == 0 or index_b.max() < len(pool)

    def test_unknown_pool_user_raises(self, clone_vos):
        index = BandedSketchIndex(clone_vos)
        with pytest.raises(UnknownUserError):
            index.candidate_pairs([0, 1, 10**9])

    def test_max_bucket_skips_overfull_buckets(self, clone_vos):
        pool = sorted(clone_vos.users())
        capped = BandedSketchIndex(clone_vos, IndexConfig(max_bucket=1))
        index_a, _ = capped.candidate_pairs(pool)
        assert index_a.size == 0

    def test_multi_word_bands_still_find_clones(self, clone_vos):
        index = BandedSketchIndex(clone_vos, IndexConfig(rows_per_band=2))
        pool = sorted(clone_vos.users())
        index_a, index_b = index.candidate_pairs(pool)
        proposed = set(zip(index_a.tolist(), index_b.tolist()))
        clone_hits = sum(
            1 for a in range(0, len(pool), 2) if (a, a + 1) in proposed
        )
        assert clone_hits >= 0.9 * (len(pool) // 2)

    def test_fixed_band_count_is_respected(self, clone_vos):
        index = BandedSketchIndex(clone_vos, IndexConfig(bands=4))
        index.refresh()
        assert index.bands == 4
        assert index.stats()["auto_bands"] is False


class TestIncrementalMaintenance:
    def _loaded_index(self):
        vos = VirtualOddSketch(
            shared_array_bits=1 << 20, virtual_sketch_size=1024, seed=5
        )
        vos.process_batch(clone_pool_elements(num_users=100, seed=5))
        index = BandedSketchIndex(vos, IndexConfig(bands=16))
        index.refresh()
        return vos, index

    def test_refresh_is_a_noop_when_nothing_changed(self):
        _, index = self._loaded_index()
        before = index.stats()
        index.refresh()
        after = index.stats()
        assert after["rebuilds"] == before["rebuilds"]
        assert after["incremental_updates"] == before["incremental_updates"]

    def test_ingest_triggers_rebuild_on_demand(self):
        vos, index = self._loaded_index()
        before = index.stats()["rebuilds"]
        vos.process(StreamElement(1, 424242, Action.INSERT))
        index.refresh()
        assert index.stats()["rebuilds"] == before + 1

    def test_cancelling_batch_appends_new_users_incrementally(self):
        vos = VirtualOddSketch(
            shared_array_bits=1 << 16, virtual_sketch_size=1024, seed=5
        )
        index = BandedSketchIndex(vos, IndexConfig(bands=16))
        index.refresh()
        before = index.stats()
        # Insert+delete of one item cancels inside xor_bulk: the array version
        # does not move, yet two brand-new users appeared.
        vos.process_batch(
            [
                StreamElement(7001, 1, Action.INSERT),
                StreamElement(7001, 1, Action.DELETE),
                StreamElement(7002, 2, Action.INSERT),
                StreamElement(7002, 2, Action.DELETE),
            ]
        )
        index.refresh()
        after = index.stats()
        assert after["rebuilds"] == before["rebuilds"]
        assert after["incremental_updates"] == before["incremental_updates"] + 1
        assert after["users_indexed"] == before["users_indexed"] + 2
        # The array is untouched, so both users recover identical (all-zero)
        # rows and must be co-candidates via the residual whole-row bucket.
        index_a, index_b = index.candidate_pairs([7001, 7002])
        assert (index_a.tolist(), index_b.tolist()) == ([0], [1])

    def test_stats_report_signature_memory(self):
        _, index = self._loaded_index()
        stats = index.stats()
        assert stats["signature_bytes"] > 0
        assert stats["users_indexed"] == 100
        assert stats["bands"] == 16


class TestShardedIndex:
    def test_cross_shard_clone_pairs_are_proposed(self, clone_sharded):
        cross = [
            (2 * i, 2 * i + 1)
            for i in range(200)
            if clone_sharded.shard_of(2 * i) != clone_sharded.shard_of(2 * i + 1)
        ]
        assert cross, "workload should produce cross-shard clone pairs"
        pool = sorted(clone_sharded.users())
        index = BandedSketchIndex(clone_sharded)
        index_a, index_b = index.candidate_pairs(pool)
        proposed = set(zip(index_a.tolist(), index_b.tolist()))
        hits = sum(
            1 for a, b in cross if (pool.index(a), pool.index(b)) in proposed
        )
        assert hits >= 0.9 * len(cross)

    def test_sharded_search_matches_exact_ranking(self, clone_sharded):
        exact = top_k_similar_pairs(clone_sharded, k=40)
        lsh = top_k_similar_pairs(clone_sharded, k=40, candidates="lsh")
        assert [(p.user_a, p.user_b, p.jaccard) for p in exact] == [
            (p.user_a, p.user_b, p.jaccard) for p in lsh
        ]

    def test_one_signature_table_per_shard(self, clone_sharded):
        index = BandedSketchIndex(clone_sharded)
        index.refresh()
        stats = index.stats()
        assert stats["shards"] == 4
        assert stats["users_indexed"] == len(clone_sharded.users())


class TestSearchIntegration:
    def test_invalid_candidates_mode_raises(self, clone_vos):
        with pytest.raises(ConfigurationError):
            top_k_similar_pairs(clone_vos, k=5, candidates="bogus")
        # Validated eagerly: a typo fails even on a pool too small to search.
        with pytest.raises(ConfigurationError):
            top_k_similar_pairs(clone_vos, k=5, candidates="bogus", users=[])
        with pytest.raises(ConfigurationError):
            pairs_above_threshold(clone_vos, 0.5, candidates="bogus", users=[])

    def test_pairs_above_threshold_lsh_subset_of_exhaustive(self, clone_vos):
        exhaustive = pairs_above_threshold(clone_vos, 0.8)
        lsh = pairs_above_threshold(clone_vos, 0.8, candidates="lsh")
        exhaustive_keys = {(p.user_a, p.user_b) for p in exhaustive}
        lsh_keys = {(p.user_a, p.user_b) for p in lsh}
        assert lsh_keys <= exhaustive_keys
        assert len(lsh_keys) >= 0.95 * len(exhaustive_keys)

    def test_nearest_neighbours_with_index_finds_clone(self, clone_vos):
        index = BandedSketchIndex(clone_vos)
        results = nearest_neighbours(clone_vos, 0, k=3, index=index)
        assert results and results[0].user_b == 1

    def test_neighbour_candidates_subset_and_excludes_target(self, clone_vos):
        index = BandedSketchIndex(clone_vos)
        pool = sorted(clone_vos.users())
        neighbours = index.neighbour_candidates(0, pool)
        assert 0 not in neighbours
        assert set(neighbours) <= set(pool)
        assert 1 in neighbours


class TestServiceIntegration:
    @pytest.fixture()
    def service(self):
        # Provisioned with headroom (2000 expected users, 200 ingested) so the
        # shared arrays stay sparse enough for high banding recall.
        config = ServiceConfig(
            expected_users=2000, baseline_registers=64, num_shards=2, seed=9
        )
        service = SimilarityService.from_config(config)
        service.ingest(clone_pool_elements(num_users=200, items_per_user=60, seed=9))
        return service

    def test_index_config_flows_from_service_config(self, service):
        index = service.index()
        assert index.config == IndexConfig()
        assert index.seed == 9  # inherited from ServiceConfig.seed via the sketch

    def test_stats_expose_index_counters_after_lsh_query(self, service):
        assert service.stats()["index"] is None
        service.top_k_pairs(k=5, candidates="lsh")
        index_stats = service.stats()["index"]
        assert index_stats is not None
        assert index_stats["last_candidate_pairs"] is not None
        assert index_stats["signature_bytes"] > 0

    def test_lsh_top_k_pairs_matches_exhaustive(self, service):
        exact = service.top_k_pairs(k=20)
        lsh = service.top_k_pairs(k=20, candidates="lsh")
        assert [(p.user_a, p.user_b) for p in lsh] == [
            (p.user_a, p.user_b) for p in exact
        ]

    def test_pairs_above_and_lsh_topk_user(self, service):
        screened = service.pairs_above(0.9, candidates="lsh")
        assert {(p.user_a, p.user_b) for p in screened} >= {
            (2 * i, 2 * i + 1) for i in range(5)
        }
        neighbours = service.top_k(0, k=1, index="lsh")
        assert neighbours and neighbours[0].user_b == 1
        with pytest.raises(ConfigurationError):
            service.top_k(0, index="bogus")

    def test_index_survives_snapshot_round_trip(self, service, tmp_path):
        path = tmp_path / "state.vos"
        before = service.top_k_pairs(k=10, candidates="lsh")
        service.save(path)
        restored = SimilarityService.load(path)
        after = restored.top_k_pairs(k=10, candidates="lsh")
        assert [(p.user_a, p.user_b, p.jaccard) for p in before] == [
            (p.user_a, p.user_b, p.jaccard) for p in after
        ]


class TestIdenticalRowsGuarantee:
    def test_identical_rows_always_co_candidates(self):
        """Users whose packed rows are equal share every band, hence a bucket.

        A huge array over a 10-user population makes cross-contamination so
        unlikely that the clone pairs recover literally identical rows.
        """
        vos = VirtualOddSketch(
            shared_array_bits=1 << 24, virtual_sketch_size=1024, seed=2
        )
        vos.process_batch(clone_pool_elements(num_users=10, seed=2))
        pool = sorted(vos.users())
        rows = vos.packed_rows(pool)
        identical = [
            (i, i + 1)
            for i in range(0, len(pool), 2)
            if np.array_equal(rows[i], rows[i + 1])
        ]
        assert identical, "a near-empty array should leave clone rows identical"
        for config in (
            IndexConfig(),
            IndexConfig(bands=3, seed=123),
            IndexConfig(rows_per_band=4, seed=7),
            IndexConfig(min_band_bits=1),
            IndexConfig(bands=16, min_band_bits=5, seed=42),
        ):
            index = BandedSketchIndex(vos, config)
            index_a, index_b = index.candidate_pairs(pool)
            proposed = set(zip(index_a.tolist(), index_b.tolist()))
            for i, j in identical:
                assert (i, j) in proposed, (config, i, j)

class TestIndexPersistence:
    """export_state/restore_state and the snapshot section codec."""

    def test_state_round_trips_through_section_bytes(self, clone_vos):
        from repro.index import decode_index_state, encode_index_state
        from repro.service.snapshot import dumps_snapshot, loads_snapshot

        index = BandedSketchIndex(clone_vos)
        pool = sorted(clone_vos.users())
        live_a, live_b = index.candidate_pairs(pool)
        state = decode_index_state(encode_index_state(index.export_state()))

        restored_sketch = loads_snapshot(dumps_snapshot(clone_vos))
        restored_index = BandedSketchIndex(restored_sketch)
        assert restored_index.restore_state(state) is True
        assert restored_index.stats()["restored"] == 1
        got_a, got_b = restored_index.candidate_pairs(pool)
        assert got_a.tolist() == live_a.tolist()
        assert got_b.tolist() == live_b.tolist()
        # The restored tables answered without any signature rebuild.
        assert restored_index.stats()["rebuilds"] == 0

    def test_restore_rejects_mismatched_layouts(self, clone_vos):
        index = BandedSketchIndex(clone_vos, IndexConfig(bands=4))
        index.build()
        state = index.export_state()
        other = BandedSketchIndex(clone_vos, IndexConfig(bands=6))
        assert other.restore_state(state) is False
        wrong_seed = BandedSketchIndex(clone_vos, IndexConfig(bands=4, seed=999))
        assert wrong_seed.restore_state(state) is False
        wrong_width = BandedSketchIndex(
            clone_vos, IndexConfig(bands=4, rows_per_band=2)
        )
        assert wrong_width.restore_state(state) is False

    def test_stale_shards_rebuild_on_demand(self, clone_sharded):
        from repro.service.snapshot import dumps_snapshot, loads_snapshot

        index = BandedSketchIndex(clone_sharded)
        pool = sorted(clone_sharded.users())
        index.candidate_pairs(pool)
        state = index.export_state()
        restored_sketch = loads_snapshot(dumps_snapshot(clone_sharded))
        restored_index = BandedSketchIndex(restored_sketch)
        assert restored_index.restore_state(state, stale_shards=[1]) is True
        stats = restored_index.stats()
        assert stats["restored"] == clone_sharded.num_shards - 1
        got_a, got_b = restored_index.candidate_pairs(pool)
        live_a, live_b = index.candidate_pairs(pool)
        assert got_a.tolist() == live_a.tolist()
        assert got_b.tolist() == live_b.tolist()
        # Exactly the stale shard's table was rebuilt.
        assert restored_index.stats()["rebuilds"] == 1

    def test_apply_append_extends_restored_tables(self, clone_vos):
        index = BandedSketchIndex(clone_vos)
        pool = sorted(clone_vos.users())
        index.refresh()
        export = index.export_append(0, pool[:3])
        assert export is not None
        fresh = BandedSketchIndex(clone_vos)
        assert fresh.restore_state(index.export_state()) is True
        before_rows = len(fresh._shard_signatures[0].users)
        # Appending known users is a no-op; unknown layouts are ignored.
        fresh.apply_append(0, export["users"], export["signatures"], export["valid"])
        assert len(fresh._shard_signatures[0].users) == before_rows

    def test_service_save_load_restores_index(self, tmp_path):
        from repro.service import ServiceConfig, SimilarityService

        service = SimilarityService.from_config(
            ServiceConfig(expected_users=200, num_shards=4, seed=6)
        )
        service.ingest(clone_pool_elements(num_users=120))
        before = service.top_k_pairs(k=10, candidates="lsh")
        path = tmp_path / "state.vos"
        service.save(path)  # index is built, so it is persisted automatically
        restored = SimilarityService.load(path)
        stats = restored.stats()
        assert stats["index"] is not None
        assert stats["index"]["restored"] == 4
        after = restored.top_k_pairs(k=10, candidates="lsh")
        assert [(p.user_a, p.user_b, p.jaccard) for p in before] == [
            (p.user_a, p.user_b, p.jaccard) for p in after
        ]
        assert restored.stats()["index"]["rebuilds"] == 0
