"""Tests for repro.similarity.search (top-k / threshold similar-pair search)."""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactSimilarityTracker
from repro.core.memory import MemoryBudget
from repro.core.vos import VirtualOddSketch
from repro.exceptions import ConfigurationError
from repro.similarity.search import (
    ScoredPair,
    nearest_neighbours,
    pairs_above_threshold,
    ranking_agreement,
    top_k_similar_pairs,
)
from repro.streams.edge import Action, StreamElement

#: A small population with a clear similarity structure: users 1 and 2 are
#: near-duplicates, users 3 and 4 overlap partially, user 5 is unrelated.
ITEM_SETS = {
    1: set(range(0, 50)),
    2: set(range(0, 48)) | {100, 101},
    3: set(range(30, 80)),
    4: set(range(50, 100)),
    5: set(range(200, 230)),
}


def _exact_tracker() -> ExactSimilarityTracker:
    tracker = ExactSimilarityTracker()
    for user, items in ITEM_SETS.items():
        for item in items:
            tracker.process(StreamElement(user, item, Action.INSERT))
    return tracker


def _vos_sketch() -> VirtualOddSketch:
    budget = MemoryBudget(baseline_registers=32, num_users=200)
    sketch = VirtualOddSketch.from_budget(budget, seed=7)
    for user, items in ITEM_SETS.items():
        for item in items:
            sketch.process(StreamElement(user, item, Action.INSERT))
    return sketch


class TestTopKSimilarPairs:
    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            top_k_similar_pairs(_exact_tracker(), k=0)

    def test_invalid_prefilter(self):
        with pytest.raises(ConfigurationError):
            top_k_similar_pairs(_exact_tracker(), k=1, prefilter_threshold=1.5)

    def test_exact_ranking_puts_duplicates_first(self):
        results = top_k_similar_pairs(_exact_tracker(), k=3)
        assert (results[0].user_a, results[0].user_b) == (1, 2)
        assert results[0].jaccard > results[1].jaccard

    def test_results_sorted_descending(self):
        results = top_k_similar_pairs(_exact_tracker(), k=5)
        scores = [pair.jaccard for pair in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_result_count(self):
        assert len(top_k_similar_pairs(_exact_tracker(), k=2)) == 2

    def test_candidate_restriction(self):
        results = top_k_similar_pairs(_exact_tracker(), k=10, users=[1, 2, 5])
        pairs = {(p.user_a, p.user_b) for p in results}
        assert pairs <= {(1, 2), (1, 5), (2, 5)}

    def test_minimum_cardinality_excludes_small_users(self):
        results = top_k_similar_pairs(_exact_tracker(), k=20, minimum_cardinality=45)
        users_seen = {p.user_a for p in results} | {p.user_b for p in results}
        assert 5 not in users_seen  # user 5 has only 30 items

    def test_prefilter_does_not_change_top_result(self):
        unfiltered = top_k_similar_pairs(_exact_tracker(), k=1)
        filtered = top_k_similar_pairs(_exact_tracker(), k=1, prefilter_threshold=0.5)
        assert unfiltered[0].user_a == filtered[0].user_a
        assert unfiltered[0].user_b == filtered[0].user_b

    def test_vos_ranking_agrees_with_exact_on_top_pair(self):
        vos_results = top_k_similar_pairs(_vos_sketch(), k=1)
        assert (vos_results[0].user_a, vos_results[0].user_b) == (1, 2)

    def test_scored_pair_fields(self):
        pair = top_k_similar_pairs(_exact_tracker(), k=1)[0]
        assert isinstance(pair, ScoredPair)
        assert pair.common_items == 48.0


class TestNearestNeighbours:
    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            nearest_neighbours(_exact_tracker(), target=1, k=0)
        with pytest.raises(ConfigurationError):
            nearest_neighbours(_exact_tracker(), target=999, k=2)

    def test_best_neighbour_of_a_duplicate(self):
        results = nearest_neighbours(_exact_tracker(), target=1, k=2)
        assert results[0].user_b == 2
        assert results[0].jaccard > results[1].jaccard

    def test_target_not_in_results(self):
        results = nearest_neighbours(_exact_tracker(), target=3, k=10)
        assert all(pair.user_b != 3 for pair in results)
        assert all(pair.user_a == 3 for pair in results)

    def test_candidate_restriction(self):
        results = nearest_neighbours(_exact_tracker(), target=1, k=5, candidates=[3, 4])
        assert {pair.user_b for pair in results} <= {3, 4}

    def test_vos_neighbours_match_exact_top_choice(self):
        exact_top = nearest_neighbours(_exact_tracker(), target=1, k=1)[0].user_b
        vos_top = nearest_neighbours(_vos_sketch(), target=1, k=1)[0].user_b
        assert exact_top == vos_top


class TestPairsAboveThreshold:
    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            pairs_above_threshold(_exact_tracker(), threshold=-0.1)

    def test_high_threshold_returns_only_duplicates(self):
        results = pairs_above_threshold(_exact_tracker(), threshold=0.8)
        assert [(p.user_a, p.user_b) for p in results] == [(1, 2)]

    def test_zero_threshold_returns_all_pairs(self):
        results = pairs_above_threshold(_exact_tracker(), threshold=0.0, use_prefilter=False)
        assert len(results) == 10  # C(5, 2)

    def test_prefilter_preserves_qualifying_pairs(self):
        with_filter = pairs_above_threshold(_exact_tracker(), threshold=0.3)
        without_filter = pairs_above_threshold(
            _exact_tracker(), threshold=0.3, use_prefilter=False
        )
        key = lambda p: (p.user_a, p.user_b)
        assert sorted(map(key, with_filter)) == sorted(map(key, without_filter))

    def test_results_sorted(self):
        results = pairs_above_threshold(_exact_tracker(), threshold=0.1)
        scores = [pair.jaccard for pair in results]
        assert scores == sorted(scores, reverse=True)


class TestRankingAgreement:
    def test_identical_rankings_agree_fully(self):
        ranking = top_k_similar_pairs(_exact_tracker(), k=4)
        assert ranking_agreement(ranking, ranking) == 1.0

    def test_disjoint_rankings_agree_zero(self):
        first = [ScoredPair(1, 2, 0.9, 10)]
        second = [ScoredPair(3, 4, 0.8, 5)]
        assert ranking_agreement(first, second) == 0.0

    def test_order_of_endpoints_does_not_matter(self):
        first = [ScoredPair(1, 2, 0.9, 10)]
        second = [ScoredPair(2, 1, 0.7, 9)]
        assert ranking_agreement(first, second) == 1.0

    def test_empty_rankings_agree(self):
        assert ranking_agreement([], []) == 1.0

    def test_vos_vs_exact_agreement_is_high(self):
        exact_ranking = top_k_similar_pairs(_exact_tracker(), k=3)
        vos_ranking = top_k_similar_pairs(_vos_sketch(), k=3)
        assert ranking_agreement(exact_ranking, vos_ranking) >= 2 / 3
