"""Tests for repro.service.procpool: process-pool ingest must equal serial.

The load-bearing guarantee of :class:`ProcessShardIngestor`: shipping shard
state to worker processes, routing sub-batches over shared memory, and
merging the dirty deltas back leaves the coordinator's sketch **bit-identical**
to serial ingest — array bytes, cardinality counters, dirty tracking, rankings
and journal round trips — for 1, 2 and 4 worker processes, on streams with
deletions and exactly-cancelling batches, for both the zero-copy integer path
and the pickle fallback for object (string) id columns.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, WorkerProcessError
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.service import (
    JournalConfig,
    ProcessShardIngestor,
    ServiceConfig,
    SimilarityService,
    ingest_stream,
    shard_snapshots,
)
from repro.service.sharding import ShardedVOS
from repro.similarity.search import top_k_similar_pairs
from repro.streams.batch import ElementBatch
from repro.streams.edge import Action, StreamElement

NUM_SHARDS = 8


class Boom(RuntimeError):
    """Module-level so a worker's pickled instance unpickles in the parent."""


@pytest.fixture(scope="module")
def parity_stream(small_dynamic_stream):
    """5k deletion-heavy elements plus a user whose batch cancels exactly."""
    elements = list(small_dynamic_stream.prefix(5000))
    ghost = max(element.user for element in elements) + 7
    elements.append(StreamElement(ghost, 424242, Action.INSERT))
    elements.append(StreamElement(ghost, 424242, Action.DELETE))
    return elements


def _make_sketch(seed=3) -> ShardedVOS:
    return ShardedVOS(
        num_shards=NUM_SHARDS,
        shard_array_bits=1 << 12,
        virtual_sketch_size=64,
        seed=seed,
    )


def _assert_same_sharded_state(a: ShardedVOS, b: ShardedVOS, *, dirty=True) -> None:
    """Bit-identical arrays and counters — and, with ``dirty``, identical
    dirty tracking.  Dirty-word sets depend on batch granularity (a toggle
    pair cancelling *within* one batch never writes its word), so tests that
    deliberately re-chunk batches compare them separately."""
    assert shard_snapshots(a, checkpoint_id="parity") == shard_snapshots(
        b, checkpoint_id="parity"
    )
    for shard_a, shard_b in zip(a.shards, b.shards):
        assert shard_a._cardinalities == shard_b._cardinalities
        if dirty:
            assert shard_a._dirty_counters == shard_b._dirty_counters
            assert np.array_equal(
                shard_a.shared_array.dirty_words(),
                shard_b.shared_array.dirty_words(),
            )


class TestProcessParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_serial(self, parity_stream, workers):
        serial = _make_sketch()
        ingest_stream(serial, parity_stream, batch_size=500)
        parallel = _make_sketch()
        report = ingest_stream(
            parallel, parity_stream, batch_size=500, workers=workers,
            worker_mode="process",
        )
        assert report.mode == "process"
        assert report.workers == workers
        assert report.elements == len(parity_stream)
        _assert_same_sharded_state(serial, parallel)

    def test_rankings_match_serial(self, parity_stream):
        serial = _make_sketch()
        ingest_stream(serial, parity_stream, batch_size=500)
        parallel = _make_sketch()
        ingest_stream(
            parallel, parity_stream, batch_size=500, workers=4,
            worker_mode="process",
        )
        serial_pairs = top_k_similar_pairs(serial, k=25)
        parallel_pairs = top_k_similar_pairs(parallel, k=25)
        assert serial_pairs == parallel_pairs

    def test_string_ids_fall_back_to_pickle_transport(self):
        """Object id columns can't ride shared memory; parity must still hold."""
        rng = np.random.default_rng(5)
        elements = [
            StreamElement(
                f"user-{rng.integers(0, 40)}",
                f"item-{rng.integers(0, 800)}",
                Action.INSERT if rng.random() < 0.8 else Action.DELETE,
            )
            for _ in range(2000)
        ]
        serial = _make_sketch()
        ingest_stream(serial, elements, batch_size=250)
        parallel = _make_sketch()
        ingest_stream(
            parallel, elements, batch_size=250, workers=2, worker_mode="process"
        )
        _assert_same_sharded_state(serial, parallel)

    def test_sub_batches_chunk_through_small_ring_slots(self, parity_stream):
        """Sub-batches far larger than a slot chunk in order and reuse slots."""
        serial = _make_sketch()
        ingest_stream(serial, parity_stream, batch_size=1000)
        parallel = _make_sketch()
        batches = ElementBatch.from_elements(parity_stream)
        with ProcessShardIngestor(
            parallel, workers=2, slot_rows=16, ring_slots=2
        ) as ingestor:
            for start in range(0, len(batches), 1000):
                ingestor.submit(batches.slice(start, start + 1000))
        # 16-row chunks write strictly more words than 1000-row batches (a
        # cancelled toggle pair split across chunks touches its word twice),
        # so dirty tracking is a superset, never a mismatch of the bits.
        _assert_same_sharded_state(serial, parallel, dirty=False)
        for shard_a, shard_b in zip(serial.shards, parallel.shards):
            assert set(shard_a.shared_array.dirty_words().tolist()) <= set(
                shard_b.shared_array.dirty_words().tolist()
            )

    def test_spawn_start_method(self, parity_stream):
        """Workers receive everything by pickle, so spawn must work too."""
        serial = _make_sketch()
        ingest_stream(serial, parity_stream, batch_size=2500)
        parallel = _make_sketch()
        batches = ElementBatch.from_elements(parity_stream)
        with ProcessShardIngestor(
            parallel, workers=2, start_method="spawn"
        ) as ingestor:
            for start in range(0, len(batches), 2500):
                ingestor.submit(batches.slice(start, start + 2500))
        _assert_same_sharded_state(serial, parallel)


class TestLifecycle:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessShardIngestor(_make_sketch(), 0)

    def test_rejects_unsharded_sketch(self):
        from repro.core.vos import VirtualOddSketch

        vos = VirtualOddSketch(shared_array_bits=1024, virtual_sketch_size=32)
        with pytest.raises(ConfigurationError):
            ProcessShardIngestor(vos, 2)

    def test_workers_capped_at_shard_count(self):
        sketch = ShardedVOS(
            num_shards=2, shard_array_bits=1 << 10, virtual_sketch_size=32
        )
        with ProcessShardIngestor(sketch, 16) as ingestor:
            assert ingestor.workers == 2

    def test_submit_after_close_raises(self):
        ingestor = ProcessShardIngestor(_make_sketch(), 2)
        ingestor.close()
        with pytest.raises(ConfigurationError, match="closed"):
            ingestor.submit([StreamElement(1, 2, Action.INSERT)])

    def test_close_is_idempotent(self):
        ingestor = ProcessShardIngestor(_make_sketch(), 2)
        ingestor.close()
        ingestor.close()

    def test_empty_run_leaves_state_untouched(self):
        sketch = _make_sketch()
        before = shard_snapshots(sketch, checkpoint_id="parity")
        with ProcessShardIngestor(sketch, 2):
            pass
        assert shard_snapshots(sketch, checkpoint_id="parity") == before


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="failure injection forks the patched sketch class into the worker",
)
class TestFailureRelay:
    def test_worker_exception_surfaces_with_original_type(
        self, parity_stream, monkeypatch
    ):
        """The worker's exception unpickles in the coordinator and re-raises,
        chained from a WorkerProcessError carrying the remote traceback."""
        from repro.core.vos import VirtualOddSketch

        def explode(self, batch):
            raise Boom("injected worker failure")

        monkeypatch.setattr(VirtualOddSketch, "process_batch", explode)
        sketch = _make_sketch()
        before = shard_snapshots(sketch, checkpoint_id="parity")
        ingestor = ProcessShardIngestor(sketch, 2, start_method="fork")
        with pytest.raises(Boom, match="injected worker failure") as excinfo:
            try:
                ingestor.submit(ElementBatch.from_elements(parity_stream[:1000]))
            finally:
                ingestor.close()
        cause = excinfo.value.__cause__
        assert isinstance(cause, WorkerProcessError)
        assert "explode" in str(cause)  # remote traceback names the raise site
        # A poisoned run never merges partial state back.
        assert shard_snapshots(sketch, checkpoint_id="parity") == before

    def test_unpicklable_exception_falls_back_to_traceback_text(
        self, parity_stream, monkeypatch
    ):
        from repro.core.vos import VirtualOddSketch

        class LocalBoom(RuntimeError):
            """Defined in a function scope: pickling it in the worker fails."""

        def explode(self, batch):
            raise LocalBoom("unpicklable failure")

        monkeypatch.setattr(VirtualOddSketch, "process_batch", explode)
        ingestor = ProcessShardIngestor(_make_sketch(), 2, start_method="fork")
        with pytest.raises(WorkerProcessError, match="unpicklable failure"):
            try:
                ingestor.submit(ElementBatch.from_elements(parity_stream[:1000]))
            finally:
                ingestor.close()


class TestCounterAggregation:
    @pytest.fixture()
    def registry(self):
        previous = get_registry()
        fresh = set_registry(MetricsRegistry(enabled=True))
        yield fresh
        set_registry(previous)

    def test_worker_counters_merge_exactly(self, parity_stream, registry):
        sketch = _make_sketch()
        report = ingest_stream(
            sketch, parity_stream, batch_size=500, workers=2, worker_mode="process"
        )
        total = report.elements
        assert registry.counter("ingest.worker_elements").value == total
        per_worker = [
            registry.counter(f"ingest.proc.worker{w}.elements").value
            for w in range(2)
        ]
        assert sum(per_worker) == total
        assert all(count > 0 for count in per_worker)  # both workers ingested
        snapshot = registry.snapshot()
        assert "ingest.proc.queue_depth" in snapshot["histograms"]

    def test_disabled_registry_stays_silent(self, parity_stream, registry):
        registry.disable()
        sketch = _make_sketch()
        ingest_stream(
            sketch, parity_stream, batch_size=500, workers=2, worker_mode="process"
        )
        assert registry.snapshot()["counters"] == {}


class TestServiceIntegration:
    def test_service_process_mode_journal_round_trip(self, parity_stream, tmp_path):
        config = ServiceConfig(
            expected_users=200,
            num_shards=4,
            seed=9,
            workers=2,
            worker_mode="process",
            journal=JournalConfig(group_commit=True),
        )
        service = SimilarityService.from_config(config)
        report = service.ingest(parity_stream[:3000])
        assert report.mode == "process"
        assert service.stats()["worker_mode"] == "process"
        path = tmp_path / "state.vos"
        service.save(path)
        service.ingest(parity_stream[3000:])
        service.save_delta()
        restored = SimilarityService.load(path)
        serial = SimilarityService.from_config(
            ServiceConfig(expected_users=200, num_shards=4, seed=9)
        )
        serial.ingest(parity_stream[:3000])
        serial.ingest(parity_stream[3000:])
        # Replay clears the restored sketch's dirty tracking (its state now
        # equals snapshot + journal); compare the bits and counters.
        _assert_same_sharded_state(serial.sketch, restored.sketch, dirty=False)

    def test_single_shard_sketch_ingests_serially(self, parity_stream):
        """No independent shards to distribute: mode reports what ran."""
        sketch = ShardedVOS(
            num_shards=1, shard_array_bits=1 << 12, virtual_sketch_size=64
        )
        report = ingest_stream(
            sketch, parity_stream[:500], workers=4, worker_mode="process"
        )
        # A 1-shard sketch still runs the process path with one worker (the
        # ingestor caps workers at the shard count).
        assert report.mode == "process"
        assert report.workers == 1
