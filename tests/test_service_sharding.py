"""Tests for repro.service.sharding (ShardedVOS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memory import MemoryBudget
from repro.core.vos import VirtualOddSketch
from repro.exceptions import ConfigurationError, UnknownUserError
from repro.service.sharding import ShardedVOS
from repro.similarity.measures import jaccard_coefficient
from repro.streams.edge import Action, StreamElement


class TestConstruction:
    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedVOS(0, 1024, 64)

    def test_from_budget_splits_memory_evenly(self):
        budget = MemoryBudget(baseline_registers=10, num_users=40)
        sketch = ShardedVOS.from_budget(budget, num_shards=4)
        assert sketch.num_shards == 4
        assert sketch.shard_array_bits == budget.total_bits // 4
        assert sketch.memory_bits() == budget.total_bits

    def test_from_budget_uneven_split_rounds_up(self):
        budget = MemoryBudget(baseline_registers=10, num_users=7)
        sketch = ShardedVOS.from_budget(budget, num_shards=3)
        assert sketch.shard_array_bits * 3 >= budget.total_bits
        assert sketch.virtual_sketch_size <= sketch.shard_array_bits


class TestRouting:
    def test_every_user_owned_by_exactly_one_shard(self):
        sketch = ShardedVOS(4, 2048, 64, seed=1)
        for user in range(200):
            shard = sketch.shard_of(user)
            assert 0 <= shard < 4
            assert sketch.shard_of(user) == shard  # deterministic

    def test_routing_distributes_users(self):
        sketch = ShardedVOS(4, 2048, 64, seed=1)
        owners = {sketch.shard_of(user) for user in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_updates_only_touch_owning_shard(self):
        sketch = ShardedVOS(4, 2048, 64, seed=1)
        sketch.process(StreamElement(7, 42, Action.INSERT))
        owner = sketch.shard_of(7)
        for index, shard in enumerate(sketch.shards):
            expected = 1 if index == owner else 0
            assert shard.shared_array.ones_count == expected


class TestSingleShardEquivalence:
    """ShardedVOS(1, m, k) must be bit-for-bit a plain VirtualOddSketch(m, k)."""

    def test_estimates_and_state_identical(self, small_dynamic_stream):
        stream = small_dynamic_stream.prefix(3000)
        plain = VirtualOddSketch(shared_array_bits=16384, virtual_sketch_size=256, seed=5)
        sharded = ShardedVOS(1, 16384, 256, seed=5)
        for element in stream:
            plain.process(element)
            sharded.process(element)
        assert np.array_equal(
            plain.shared_array._bits._bits, sharded.shards[0].shared_array._bits._bits
        )
        users = sorted(plain.users())[:8]
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                assert plain.estimate_jaccard(user_a, user_b) == sharded.estimate_jaccard(
                    user_a, user_b
                )
                assert plain.estimate_common_items(
                    user_a, user_b
                ) == sharded.estimate_common_items(user_a, user_b)
                assert plain.estimate_symmetric_difference(
                    user_a, user_b
                ) == sharded.estimate_symmetric_difference(user_a, user_b)


class TestDelegatedBookkeeping:
    def test_cardinality_and_users(self):
        sketch = ShardedVOS(3, 1024, 32, seed=2)
        for user in range(10):
            for item in range(user + 1):
                sketch.process(StreamElement(user, item, Action.INSERT))
        assert sketch.users() == set(range(10))
        for user in range(10):
            assert sketch.has_user(user)
            assert sketch.cardinality(user) == user + 1
        assert not sketch.has_user(999)
        with pytest.raises(UnknownUserError):
            sketch.cardinality(999)

    def test_shard_report_accounts_all_users(self):
        sketch = ShardedVOS(4, 1024, 32, seed=2)
        for user in range(50):
            sketch.process(StreamElement(user, 1, Action.INSERT))
        report = sketch.shard_report()
        assert sum(entry["users"] for entry in report) == 50
        assert all(entry["memory_bits"] == 1024 for entry in report)


class TestCrossShardEstimates:
    def test_cross_shard_pairs_track_true_jaccard(self, small_dynamic_stream):
        """Accuracy sanity: estimates across shards stay close to ground truth."""
        stream = small_dynamic_stream.prefix(4000)
        sketch = ShardedVOS(4, 65536, 512, seed=13)
        for element in stream:
            sketch.process(element)
        item_sets = stream.item_sets_at(None)
        users = sorted(
            (u for u, items in item_sets.items() if len(items) >= 10),
            key=lambda u: -len(item_sets[u]),
        )[:12]
        cross_pairs = [
            (a, b)
            for i, a in enumerate(users)
            for b in users[i + 1 :]
            if sketch.shard_of(a) != sketch.shard_of(b)
        ]
        assert cross_pairs, "expected at least one cross-shard pair"
        errors = [
            abs(
                sketch.estimate_jaccard(a, b)
                - jaccard_coefficient(item_sets[a], item_sets[b])
            )
            for a, b in cross_pairs
        ]
        assert sum(errors) / len(errors) < 0.15

    def test_identical_users_in_different_shards_look_identical(self):
        sketch = ShardedVOS(8, 8192, 256, seed=3)
        users = list(range(12))
        for user in users:
            for item in range(40):
                sketch.process(StreamElement(user, item, Action.INSERT))
        pair = next(
            (a, b)
            for i, a in enumerate(users)
            for b in users[i + 1 :]
            if sketch.shard_of(a) != sketch.shard_of(b)
        )
        assert sketch.estimate_jaccard(*pair) > 0.8

    def test_beta_aggregates_over_shards(self):
        sketch = ShardedVOS(2, 64, 8, seed=1)
        sketch.process(StreamElement(1, 1, Action.INSERT))
        ones = sum(shard.shared_array.ones_count for shard in sketch.shards)
        assert sketch.beta == ones / 128
        assert len(sketch.betas()) == 2
