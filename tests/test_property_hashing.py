"""Property-based tests (hypothesis) for the hashing substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.bitpack import PackedBitArray
from repro.hashing.families import HashFamily
from repro.hashing.permutation import AffinePermutation, FeistelPermutation
from repro.hashing.universal import UniversalHash, stable_hash64

keys = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.text(max_size=30),
    st.tuples(st.integers(), st.text(max_size=5)),
)


@given(key=keys, seed=st.integers(min_value=0, max_value=2**32))
def test_stable_hash_is_deterministic(key, seed):
    assert stable_hash64(key, seed) == stable_hash64(key, seed)


@given(key=keys, seed=st.integers(min_value=0, max_value=2**32))
def test_stable_hash_fits_64_bits(key, seed):
    assert 0 <= stable_hash64(key, seed) < 2**64


@given(
    key=keys,
    range_size=st.integers(min_value=1, max_value=10_000),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_universal_hash_stays_in_range(key, range_size, seed):
    value = UniversalHash(range_size=range_size, seed=seed)(key)
    assert 0 <= value < range_size


@given(
    size=st.integers(min_value=1, max_value=32),
    range_size=st.integers(min_value=1, max_value=1000),
    seed=st.integers(min_value=0, max_value=2**16),
    key=keys,
)
@settings(max_examples=50)
def test_hash_family_members_stay_in_range(size, range_size, seed, key):
    family = HashFamily(size=size, range_size=range_size, seed=seed)
    assert len(family.apply_all(key)) == size
    assert all(0 <= v < range_size for v in family.apply_all(key))


@given(
    domain=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40)
def test_feistel_permutation_is_bijective(domain, seed):
    perm = FeistelPermutation(domain_size=domain, seed=seed)
    assert sorted(perm(x) for x in range(domain)) == list(range(domain))


@given(
    domain=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40)
def test_affine_permutation_inverse_roundtrips(domain, seed):
    perm = AffinePermutation(domain_size=domain, seed=seed)
    for value in range(min(domain, 50)):
        assert perm.inverse(perm(value)) == value


@given(
    size=st.integers(min_value=1, max_value=256),
    operations=st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
)
@settings(max_examples=60)
def test_packed_bit_array_popcount_invariant(size, operations):
    """The running ones-count always equals a full recount."""
    bits = PackedBitArray(size)
    for op in operations:
        bits.flip(op % size)
    assert bits.ones_count == sum(bits.to_list())
    assert 0 <= bits.fraction_of_ones <= 1.0
