"""Tests for repro.streams.io: text + binary formats, detection, chunked reads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.streams.batch import ElementBatch
from repro.streams.edge import Action, StreamElement
from repro.streams.io import (
    STREAM_MAGIC,
    iter_stream_batches,
    read_stream,
    write_stream,
)
from repro.streams.stream import GraphStream


def test_roundtrip(tmp_path, tiny_stream):
    path = tmp_path / "stream.txt"
    write_stream(tiny_stream, path)
    loaded = read_stream(path)
    assert list(loaded) == list(tiny_stream)
    assert loaded.name == "stream"


def test_read_uses_file_stem_as_default_name(tmp_path, tiny_stream):
    path = tmp_path / "youtube-sample.txt"
    write_stream(tiny_stream, path)
    assert read_stream(path).name == "youtube-sample"


def test_read_honours_explicit_name(tmp_path, tiny_stream):
    path = tmp_path / "data.txt"
    write_stream(tiny_stream, path)
    assert read_stream(path, name="renamed").name == "renamed"


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "hand.txt"
    path.write_text("# comment\n\n+ 1 10\n+ 2 10\n- 1 10\n")
    stream = read_stream(path)
    assert len(stream) == 3
    assert stream[2] == StreamElement(1, 10, Action.DELETE)


def test_missing_file_raises(tmp_path):
    with pytest.raises(DatasetError):
        read_stream(tmp_path / "does-not-exist.txt")


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("+ 1\n")
    with pytest.raises(DatasetError):
        read_stream(path)


def test_bad_action_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("? 1 2\n")
    with pytest.raises(DatasetError):
        read_stream(path)


def test_non_integer_ids_load_as_strings(tmp_path):
    """Satellite fix: string ids written via write_stream must load back."""
    path = tmp_path / "named.txt"
    path.write_text("+ alice 2\n- alice 2\n+ bob pancakes\n")
    stream = read_stream(path)
    assert list(stream) == [
        StreamElement("alice", 2, Action.INSERT),
        StreamElement("alice", 2, Action.DELETE),
        StreamElement("bob", "pancakes", Action.INSERT),
    ]


def test_require_int_restores_strict_behaviour(tmp_path):
    path = tmp_path / "named.txt"
    path.write_text("+ alice 2\n")
    with pytest.raises(DatasetError, match="integer id"):
        read_stream(path, require_int=True)


def test_string_id_stream_round_trips(tmp_path):
    """The write/read asymmetry: f-string write used to fail on read."""
    elements = [
        StreamElement("alice", "item-1", Action.INSERT),
        StreamElement("bob", "item-1", Action.INSERT),
        StreamElement("alice", "item-1", Action.DELETE),
    ]
    stream = GraphStream(elements, name="named")
    path = tmp_path / "named.txt"
    write_stream(stream, path)
    assert list(read_stream(path)) == elements


def test_whitespace_ids_rejected_on_text_write(tmp_path):
    stream = GraphStream([StreamElement("two words", 1, Action.INSERT)])
    with pytest.raises(DatasetError, match="whitespace"):
        write_stream(stream, tmp_path / "bad.txt")


def test_integer_looking_string_ids_rejected_on_text_write(tmp_path):
    """'007' would load back as int 7 — a lossy round trip must fail loudly."""
    stream = GraphStream([StreamElement("007", 1, Action.INSERT)])
    with pytest.raises(DatasetError, match="load back as an integer"):
        write_stream(stream, tmp_path / "bad.txt")
    # The binary format preserves the id exactly.
    path = tmp_path / "good.vosstream"
    write_stream(stream, path)
    assert read_stream(path)[0].user == "007"


def test_non_int_non_str_ids_rejected_on_text_write(tmp_path):
    stream = GraphStream([StreamElement(1.5, 1, Action.INSERT)])
    with pytest.raises(DatasetError, match="must be int or str"):
        write_stream(stream, tmp_path / "bad.txt")


def test_infeasible_file_rejected_when_validating(tmp_path):
    path = tmp_path / "infeasible.txt"
    path.write_text("- 1 2\n")
    from repro.exceptions import InfeasibleStreamError

    with pytest.raises(InfeasibleStreamError):
        read_stream(path)


def test_infeasible_file_accepted_without_validation(tmp_path):
    path = tmp_path / "infeasible.txt"
    path.write_text("- 1 2\n")
    stream = read_stream(path, validate=False)
    assert isinstance(stream, GraphStream)
    assert len(stream) == 1


# -- binary columnar format ----------------------------------------------------------


class TestBinaryFormat:
    def test_round_trip_preserves_elements_and_name(self, tmp_path, tiny_stream):
        path = tmp_path / "stream.vosstream"
        write_stream(tiny_stream, path)
        assert path.read_bytes()[: len(STREAM_MAGIC)] == STREAM_MAGIC
        loaded = read_stream(path)
        assert list(loaded) == list(tiny_stream)
        assert loaded.name == "tiny"  # recorded name wins over the file stem

    def test_auto_detection_ignores_the_suffix(self, tmp_path, tiny_stream):
        path = tmp_path / "stream.bin"
        write_stream(tiny_stream, path, format="binary")
        assert list(read_stream(path)) == list(tiny_stream)

    def test_forced_format_overrides_detection(self, tmp_path, tiny_stream):
        path = tmp_path / "stream.vosstream"
        write_stream(tiny_stream, path)
        with pytest.raises(DatasetError):
            read_stream(path, format="text")

    def test_string_ids_round_trip_via_json_columns(self, tmp_path):
        elements = [
            StreamElement("alice", "item-1", Action.INSERT),
            StreamElement(7, "item-1", Action.INSERT),
            StreamElement("alice", "item-1", Action.DELETE),
        ]
        path = tmp_path / "named.vosstream"
        write_stream(GraphStream(elements, name="named"), path)
        assert list(read_stream(path)) == elements

    def test_require_int_rejects_string_id_binary(self, tmp_path):
        path = tmp_path / "named.vosstream"
        write_stream(GraphStream([StreamElement("alice", 1, Action.INSERT)]), path)
        with pytest.raises(DatasetError, match="non-integer"):
            read_stream(path, require_int=True)

    def test_empty_stream_round_trips(self, tmp_path):
        path = tmp_path / "empty.vosstream"
        write_stream(GraphStream([], name="empty"), path)
        assert list(read_stream(path)) == []

    def test_unknown_format_name_rejected(self, tmp_path, tiny_stream):
        with pytest.raises(DatasetError, match="unknown stream format"):
            write_stream(tiny_stream, tmp_path / "x", format="parquet")
        path = tmp_path / "stream.txt"
        write_stream(tiny_stream, path)
        with pytest.raises(DatasetError, match="unknown stream format"):
            read_stream(path, format="parquet")


class TestBinaryCorruption:
    @pytest.fixture
    def binary_path(self, tmp_path, tiny_stream):
        path = tmp_path / "stream.vosstream"
        write_stream(tiny_stream, path)
        return path

    def test_flipped_payload_byte_fails_crc(self, binary_path):
        blob = bytearray(binary_path.read_bytes())
        blob[-1] ^= 0xFF
        binary_path.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="CRC-32"):
            read_stream(binary_path)

    def test_truncated_payload(self, binary_path):
        binary_path.write_bytes(binary_path.read_bytes()[:-5])
        with pytest.raises(DatasetError, match="truncated"):
            read_stream(binary_path)

    def test_truncated_header(self, binary_path):
        binary_path.write_bytes(binary_path.read_bytes()[:12])
        with pytest.raises(DatasetError, match="truncated"):
            read_stream(binary_path)

    def test_bad_version(self, binary_path):
        import struct

        blob = bytearray(binary_path.read_bytes())
        blob[len(STREAM_MAGIC) : len(STREAM_MAGIC) + 4] = struct.pack("<I", 99)
        binary_path.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="version 99"):
            read_stream(binary_path, format="binary")

    def test_bad_magic_with_forced_binary(self, tmp_path):
        path = tmp_path / "stream.vosstream"
        path.write_bytes(b"NOTASTREAMFILE....")
        with pytest.raises(DatasetError, match="magic"):
            read_stream(path, format="binary")

    def test_chunked_reader_detects_corruption(self, binary_path):
        blob = bytearray(binary_path.read_bytes())
        blob[-1] ^= 0xFF
        binary_path.write_bytes(bytes(blob))
        with pytest.raises(DatasetError, match="CRC-32|corrupt"):
            list(iter_stream_batches(binary_path, batch_size=3))


# -- chunked batch readers -----------------------------------------------------------


class TestIterStreamBatches:
    @pytest.mark.parametrize("format", ["text", "binary"])
    @pytest.mark.parametrize("batch_size", [1, 3, 1000])
    def test_chunks_cover_the_stream_in_order(
        self, tmp_path, tiny_stream, format, batch_size
    ):
        suffix = ".vosstream" if format == "binary" else ".txt"
        path = tmp_path / f"stream{suffix}"
        write_stream(tiny_stream, path, format=format)
        batches = list(iter_stream_batches(path, batch_size=batch_size))
        assert all(isinstance(batch, ElementBatch) for batch in batches)
        assert all(len(batch) <= batch_size for batch in batches)
        recovered = [element for batch in batches for element in batch]
        assert recovered == list(tiny_stream)

    def test_binary_chunks_are_integer_columns(self, tmp_path, tiny_stream):
        path = tmp_path / "stream.vosstream"
        write_stream(tiny_stream, path)
        for batch in iter_stream_batches(path, batch_size=3):
            assert batch.users.dtype == np.int64
            assert batch.items.dtype == np.int64

    def test_string_id_binary_chunks(self, tmp_path):
        elements = [
            StreamElement("alice", 1, Action.INSERT),
            StreamElement("bob", 2, Action.INSERT),
            StreamElement("carol", 3, Action.INSERT),
        ]
        path = tmp_path / "named.vosstream"
        write_stream(GraphStream(elements), path)
        batches = list(iter_stream_batches(path, batch_size=2))
        assert [element for batch in batches for element in batch] == elements

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            list(iter_stream_batches(tmp_path / "nope.txt"))

    def test_bad_batch_size(self, tmp_path, tiny_stream):
        from repro.exceptions import ConfigurationError

        path = tmp_path / "stream.txt"
        write_stream(tiny_stream, path)
        with pytest.raises(ConfigurationError, match="batch_size"):
            list(iter_stream_batches(path, batch_size=0))
