"""Tests for repro.streams.io."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.streams.edge import Action, StreamElement
from repro.streams.io import read_stream, write_stream
from repro.streams.stream import GraphStream


def test_roundtrip(tmp_path, tiny_stream):
    path = tmp_path / "stream.txt"
    write_stream(tiny_stream, path)
    loaded = read_stream(path)
    assert list(loaded) == list(tiny_stream)
    assert loaded.name == "stream"


def test_read_uses_file_stem_as_default_name(tmp_path, tiny_stream):
    path = tmp_path / "youtube-sample.txt"
    write_stream(tiny_stream, path)
    assert read_stream(path).name == "youtube-sample"


def test_read_honours_explicit_name(tmp_path, tiny_stream):
    path = tmp_path / "data.txt"
    write_stream(tiny_stream, path)
    assert read_stream(path, name="renamed").name == "renamed"


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "hand.txt"
    path.write_text("# comment\n\n+ 1 10\n+ 2 10\n- 1 10\n")
    stream = read_stream(path)
    assert len(stream) == 3
    assert stream[2] == StreamElement(1, 10, Action.DELETE)


def test_missing_file_raises(tmp_path):
    with pytest.raises(DatasetError):
        read_stream(tmp_path / "does-not-exist.txt")


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("+ 1\n")
    with pytest.raises(DatasetError):
        read_stream(path)


def test_bad_action_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("? 1 2\n")
    with pytest.raises(DatasetError):
        read_stream(path)


def test_non_integer_ids_raise(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("+ alice 2\n")
    with pytest.raises(DatasetError):
        read_stream(path)


def test_infeasible_file_rejected_when_validating(tmp_path):
    path = tmp_path / "infeasible.txt"
    path.write_text("- 1 2\n")
    from repro.exceptions import InfeasibleStreamError

    with pytest.raises(InfeasibleStreamError):
        read_stream(path)


def test_infeasible_file_accepted_without_validation(tmp_path):
    path = tmp_path / "infeasible.txt"
    path.write_text("- 1 2\n")
    stream = read_stream(path, validate=False)
    assert isinstance(stream, GraphStream)
    assert len(stream) == 1
