"""Tests for repro.similarity.pairs (the evaluation pair-selection protocol)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.similarity.pairs import select_evaluation_pairs, top_cardinality_users, top_similar_pairs

ITEM_SETS = {
    1: {10, 11, 12, 13, 14},       # cardinality 5
    2: {10, 11, 12},               # cardinality 3
    3: {20, 21},                   # cardinality 2, disjoint from 1 and 2
    4: {10, 30, 31, 32},           # cardinality 4, shares 10 with 1 and 2
    5: {40},                       # cardinality 1
}


class TestTopCardinalityUsers:
    def test_returns_largest_users(self):
        top = top_cardinality_users(ITEM_SETS, 2)
        assert set(top) == {1, 4}

    def test_count_larger_than_population(self):
        assert set(top_cardinality_users(ITEM_SETS, 50)) == set(ITEM_SETS)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            top_cardinality_users(ITEM_SETS, 0)

    def test_deterministic(self):
        assert top_cardinality_users(ITEM_SETS, 3) == top_cardinality_users(ITEM_SETS, 3)


class TestSelectEvaluationPairs:
    def test_only_pairs_with_common_items(self):
        pairs = select_evaluation_pairs(ITEM_SETS, top_users=5, min_common_items=1)
        assert (1, 2) in pairs
        assert (1, 4) in pairs
        assert (1, 3) not in pairs  # disjoint
        assert (3, 5) not in pairs

    def test_min_common_items_threshold(self):
        pairs = select_evaluation_pairs(ITEM_SETS, top_users=5, min_common_items=3)
        assert pairs == [(1, 2)]

    def test_pairs_are_ordered_small_id_first(self):
        pairs = select_evaluation_pairs(ITEM_SETS, top_users=5)
        assert all(a < b for a, b in pairs)

    def test_max_pairs_prefers_strongest_pairs(self):
        pairs = select_evaluation_pairs(ITEM_SETS, top_users=5, max_pairs=1)
        assert pairs == [(1, 2)]  # 3 common items beats 1

    def test_top_users_restricts_candidates(self):
        pairs = select_evaluation_pairs(ITEM_SETS, top_users=2, min_common_items=1)
        assert pairs == [(1, 4)]

    def test_negative_min_common_rejected(self):
        with pytest.raises(ConfigurationError):
            select_evaluation_pairs(ITEM_SETS, min_common_items=-1)

    def test_on_synthetic_stream(self, small_dynamic_stream):
        sets = small_dynamic_stream.insertions_only().item_sets_at(None)
        pairs = select_evaluation_pairs(sets, top_users=30, min_common_items=1, max_pairs=50)
        assert 0 < len(pairs) <= 50
        for user_a, user_b in pairs:
            assert len(sets[user_a] & sets[user_b]) >= 1


class TestTopSimilarPairs:
    def test_returns_requested_count(self):
        results = top_similar_pairs(ITEM_SETS, count=2)
        assert len(results) == 2

    def test_best_pair_first(self):
        results = top_similar_pairs(ITEM_SETS, count=3)
        scores = [score for _, _, score in results]
        assert scores == sorted(scores, reverse=True)
        assert results[0][:2] == (1, 2)

    def test_scores_match_exact_jaccard(self):
        from repro.similarity.measures import jaccard_coefficient

        for user_a, user_b, score in top_similar_pairs(ITEM_SETS, count=5):
            assert score == pytest.approx(
                jaccard_coefficient(ITEM_SETS[user_a], ITEM_SETS[user_b])
            )

    def test_zero_similarity_pairs_excluded(self):
        results = top_similar_pairs({1: {1}, 2: {2}}, count=5)
        assert results == []

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            top_similar_pairs(ITEM_SETS, count=0)

    def test_top_users_restriction(self):
        results = top_similar_pairs(ITEM_SETS, count=10, top_users=2)
        assert all({a, b} <= {1, 4} for a, b, _ in results)
