"""Tests for repro.similarity.measures."""

from __future__ import annotations

import math

import pytest

from repro.similarity.measures import (
    common_items,
    cosine_similarity,
    dice_coefficient,
    jaccard_coefficient,
    overlap_coefficient,
)

SET_A = {1, 2, 3, 4}
SET_B = {3, 4, 5, 6, 7}


class TestCommonItems:
    def test_basic(self):
        assert common_items(SET_A, SET_B) == 2

    def test_disjoint(self):
        assert common_items({1}, {2}) == 0

    def test_empty(self):
        assert common_items(set(), SET_A) == 0


class TestJaccard:
    def test_basic(self):
        assert jaccard_coefficient(SET_A, SET_B) == pytest.approx(2 / 7)

    def test_identical(self):
        assert jaccard_coefficient(SET_A, SET_A) == 1.0

    def test_disjoint(self):
        assert jaccard_coefficient({1, 2}, {3, 4}) == 0.0

    def test_both_empty_is_one(self):
        assert jaccard_coefficient(set(), set()) == 1.0

    def test_one_empty_is_zero(self):
        assert jaccard_coefficient(set(), {1}) == 0.0

    def test_symmetric(self):
        assert jaccard_coefficient(SET_A, SET_B) == jaccard_coefficient(SET_B, SET_A)


class TestDice:
    def test_basic(self):
        assert dice_coefficient(SET_A, SET_B) == pytest.approx(2 * 2 / 9)

    def test_identical(self):
        assert dice_coefficient(SET_A, SET_A) == 1.0

    def test_both_empty(self):
        assert dice_coefficient(set(), set()) == 1.0

    def test_relation_to_jaccard(self):
        jaccard = jaccard_coefficient(SET_A, SET_B)
        assert dice_coefficient(SET_A, SET_B) == pytest.approx(2 * jaccard / (1 + jaccard))


class TestOverlap:
    def test_basic(self):
        assert overlap_coefficient(SET_A, SET_B) == pytest.approx(2 / 4)

    def test_subset_gives_one(self):
        assert overlap_coefficient({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_one_empty(self):
        assert overlap_coefficient(set(), {1}) == 0.0

    def test_both_empty(self):
        assert overlap_coefficient(set(), set()) == 1.0


class TestCosine:
    def test_basic(self):
        assert cosine_similarity(SET_A, SET_B) == pytest.approx(2 / math.sqrt(20))

    def test_identical(self):
        assert cosine_similarity(SET_A, SET_A) == 1.0

    def test_one_empty(self):
        assert cosine_similarity(set(), {1}) == 0.0

    def test_bounded_by_one(self):
        assert cosine_similarity({1, 2, 3}, {2, 3, 4, 5, 6}) <= 1.0
