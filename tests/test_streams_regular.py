"""Tests for repro.streams.regular (the regular-graph extension)."""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactSimilarityTracker
from repro.core.memory import MemoryBudget
from repro.core.vos import VirtualOddSketch
from repro.exceptions import ConfigurationError, InfeasibleStreamError
from repro.streams.edge import Action
from repro.streams.regular import (
    RegularEdge,
    RegularGraphSimilarity,
    bipartite_elements,
    expand_regular_stream,
)


class TestRegularEdge:
    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            RegularEdge(3, 3)

    def test_defaults_to_insertion(self):
        assert RegularEdge(1, 2).is_insertion

    def test_normalized_orders_endpoints(self):
        assert RegularEdge(5, 2).normalized() == (2, 5)
        assert RegularEdge(2, 5).normalized() == (2, 5)


class TestBipartiteExpansion:
    def test_one_event_becomes_two_elements(self):
        first, second = bipartite_elements(RegularEdge(1, 2, Action.INSERT))
        assert (first.user, first.item) == (1, 2)
        assert (second.user, second.item) == (2, 1)
        assert first.is_insertion and second.is_insertion

    def test_deletion_expands_to_two_deletions(self):
        first, second = bipartite_elements(RegularEdge(1, 2, Action.DELETE))
        assert first.is_deletion and second.is_deletion

    def test_expand_regular_stream_length_and_feasibility(self):
        edges = [
            RegularEdge(1, 2),
            RegularEdge(1, 3),
            RegularEdge(2, 3),
            RegularEdge(1, 2, Action.DELETE),
        ]
        stream = expand_regular_stream(edges, name="triangle")
        assert len(stream) == 8
        assert stream.name == "triangle"
        sets = stream.item_sets_at(None)
        assert sets[1] == {3}
        assert sets[2] == {3}
        assert sets[3] == {1, 2}

    def test_expand_rejects_infeasible_sequences(self):
        with pytest.raises(InfeasibleStreamError):
            expand_regular_stream([RegularEdge(1, 2), RegularEdge(1, 2)])
        with pytest.raises(InfeasibleStreamError):
            expand_regular_stream([RegularEdge(1, 2, Action.DELETE)])


class TestRegularGraphSimilarity:
    def test_common_neighbours_exact(self):
        graph = RegularGraphSimilarity(ExactSimilarityTracker())
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        graph.add_edge(1, 4)
        graph.add_edge(2, 4)
        # Nodes 1 and 2 both neighbour {3, 4} (and each other).
        assert graph.estimate_common_neighbours(1, 2) == 2.0
        assert graph.degree(1) == 3
        assert graph.degree(2) == 3

    def test_jaccard_exact(self):
        graph = RegularGraphSimilarity(ExactSimilarityTracker())
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        graph.add_edge(1, 4)
        graph.add_edge(2, 5)
        # neighbours: N(1) = {3, 4}, N(2) = {3, 5} -> J = 1/3
        assert graph.estimate_jaccard(1, 2) == pytest.approx(1 / 3)

    def test_deleting_edges_updates_similarity(self):
        graph = RegularGraphSimilarity(ExactSimilarityTracker())
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        assert graph.estimate_common_neighbours(1, 2) == 1.0
        graph.remove_edge(1, 3)
        assert graph.estimate_common_neighbours(1, 2) == 0.0
        assert graph.live_edge_count == 1

    def test_duplicate_insertion_rejected(self):
        graph = RegularGraphSimilarity(ExactSimilarityTracker())
        graph.add_edge(1, 2)
        with pytest.raises(ConfigurationError):
            graph.add_edge(2, 1)  # same undirected edge

    def test_deleting_absent_edge_rejected(self):
        graph = RegularGraphSimilarity(ExactSimilarityTracker())
        with pytest.raises(ConfigurationError):
            graph.remove_edge(1, 2)

    def test_estimate_pair_record(self):
        graph = RegularGraphSimilarity(ExactSimilarityTracker())
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        record = graph.estimate_pair(1, 2)
        assert record.common_items == 1.0
        assert 0.0 <= record.jaccard <= 1.0

    def test_with_vos_sketch_tracks_exact(self):
        """VOS over the expanded stream approximates the exact neighbour Jaccard."""
        import random

        rng = random.Random(3)
        budget = MemoryBudget(baseline_registers=16, num_users=300)
        vos_graph = RegularGraphSimilarity(VirtualOddSketch.from_budget(budget, seed=1))
        exact_graph = RegularGraphSimilarity(ExactSimilarityTracker())
        edges = set()
        # Two hub nodes sharing most of their neighbourhoods.
        for neighbour in range(10, 150):
            for hub in (0, 1):
                if rng.random() < 0.8:
                    edges.add((hub, neighbour))
        for hub, neighbour in sorted(edges):
            vos_graph.add_edge(hub, neighbour)
            exact_graph.add_edge(hub, neighbour)
        true_jaccard = exact_graph.estimate_jaccard(0, 1)
        assert vos_graph.estimate_jaccard(0, 1) == pytest.approx(true_jaccard, abs=0.15)
