"""Tests for repro.service.batching and the ``process_batch`` contract.

The load-bearing guarantee: for every sketch in the registry, batched ingest
must leave the sketch in exactly the state the per-element loop produces —
bit-exact shared-array state for VOS, identical estimates for everyone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memory import MemoryBudget
from repro.core.vos import VirtualOddSketch
from repro.exceptions import ConfigurationError
from repro.service.batching import IngestReport, ingest_stream, iter_batches
from repro.service.sharding import ShardedVOS
from repro.similarity.engine import build_sketch, sketch_registry
from repro.streams.edge import Action, StreamElement


@pytest.fixture(autouse=True)
def _multicore(monkeypatch):
    """Pretend the host has cores so `workers > 1` exercises the threaded
    path instead of the single-core serial fallback."""
    monkeypatch.setattr("repro.service.parallel._cpu_count", lambda: 8)


@pytest.fixture(scope="module")
def parity_stream(small_dynamic_stream):
    """A 5k-element fully dynamic stream shared by the parity tests."""
    return small_dynamic_stream.prefix(5000)


def _sample_pairs(sketch, limit=15):
    users = sorted(sketch.users())[:8]
    pairs = [(a, b) for i, a in enumerate(users) for b in users[i + 1 :]]
    return pairs[:limit]


class TestIterBatches:
    def test_batches_cover_everything_in_order(self):
        elements = [StreamElement(1, i, Action.INSERT) for i in range(10)]
        batches = list(iter_batches(elements, 3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert [e for batch in batches for e in batch] == elements

    def test_exact_multiple_has_no_empty_tail(self):
        elements = [StreamElement(1, i, Action.INSERT) for i in range(6)]
        assert [len(b) for b in iter_batches(elements, 3)] == [3, 3]

    def test_empty_iterable_yields_nothing(self):
        assert list(iter_batches([], 4)) == []

    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(ConfigurationError):
            list(iter_batches([], 0))


class TestIngestReport:
    def test_throughput(self):
        report = IngestReport(elements=100, batches=2, seconds=0.5)
        assert report.elements_per_second == 200.0

    def test_zero_seconds_is_safe(self):
        assert IngestReport(elements=5, batches=1, seconds=0.0).elements_per_second == 0.0


class TestBatchParityEverySketch:
    """process_batch == per-element process, for every registered sketch."""

    @pytest.mark.parametrize("method", sorted(sketch_registry()))
    def test_estimates_identical(self, method, parity_stream):
        budget = MemoryBudget(
            baseline_registers=16, num_users=len(parity_stream.users())
        )
        reference = build_sketch(method, budget, seed=11)
        batched = build_sketch(method, budget, seed=11)
        for element in parity_stream:
            reference.process(element)
        report = ingest_stream(batched, parity_stream, batch_size=997)
        assert report.elements == len(parity_stream)
        assert batched.users() == reference.users()
        for user in sorted(reference.users()):
            assert batched.cardinality(user) == reference.cardinality(user)
        for user_a, user_b in _sample_pairs(reference):
            assert batched.estimate_common_items(
                user_a, user_b
            ) == reference.estimate_common_items(user_a, user_b)
            assert batched.estimate_jaccard(user_a, user_b) == reference.estimate_jaccard(
                user_a, user_b
            )

    @pytest.mark.parametrize("batch_size", [1, 7, 1024, 100000])
    def test_vos_shared_array_bit_exact(self, batch_size, parity_stream):
        reference = VirtualOddSketch(shared_array_bits=16384, virtual_sketch_size=256, seed=3)
        batched = VirtualOddSketch(shared_array_bits=16384, virtual_sketch_size=256, seed=3)
        for element in parity_stream:
            reference.process(element)
        ingest_stream(batched, parity_stream, batch_size=batch_size)
        assert np.array_equal(
            reference.shared_array._bits._bits, batched.shared_array._bits._bits
        )
        assert reference.shared_array.ones_count == batched.shared_array.ones_count
        assert reference._cardinalities == batched._cardinalities

    def test_sharded_vos_bit_exact(self, parity_stream):
        reference = ShardedVOS(4, 4096, 128, seed=9)
        batched = ShardedVOS(4, 4096, 128, seed=9)
        for element in parity_stream:
            reference.process(element)
        ingest_stream(batched, parity_stream, batch_size=512)
        for shard_a, shard_b in zip(reference.shards, batched.shards):
            assert np.array_equal(
                shard_a.shared_array._bits._bits, shard_b.shared_array._bits._bits
            )
            assert shard_a._cardinalities == shard_b._cardinalities


class TestBatchEdgeCases:
    def test_empty_batch_is_a_no_op(self):
        vos = VirtualOddSketch(shared_array_bits=64, virtual_sketch_size=8)
        assert vos.process_batch([]) == 0
        assert vos.shared_array.ones_count == 0

    def test_counter_clamping_matches_per_element(self):
        """Deletions below zero clamp exactly like the per-element loop."""
        weird = [
            StreamElement(1, 5, Action.DELETE),
            StreamElement(1, 5, Action.DELETE),
            StreamElement(1, 6, Action.INSERT),
            StreamElement(1, 7, Action.DELETE),
            StreamElement(2, 1, Action.DELETE),
            StreamElement(2, 1, Action.INSERT),
            StreamElement(3, 2, Action.INSERT),
        ]
        reference = VirtualOddSketch(shared_array_bits=256, virtual_sketch_size=16, seed=1)
        batched = VirtualOddSketch(shared_array_bits=256, virtual_sketch_size=16, seed=1)
        for element in weird:
            reference.process(element)
        batched.process_batch(weird)
        assert reference._cardinalities == batched._cardinalities
        assert np.array_equal(
            reference.shared_array._bits._bits, batched.shared_array._bits._bits
        )

    def test_non_integer_users_fall_back_to_per_element(self):
        elements = [
            StreamElement("alice", "item-1", Action.INSERT),
            StreamElement("bob", "item-1", Action.INSERT),
            StreamElement("alice", "item-2", Action.INSERT),
        ]
        reference = VirtualOddSketch(shared_array_bits=512, virtual_sketch_size=32, seed=2)
        batched = VirtualOddSketch(shared_array_bits=512, virtual_sketch_size=32, seed=2)
        for element in elements:
            reference.process(element)
        assert batched.process_batch(elements) == 3
        assert np.array_equal(
            reference.shared_array._bits._bits, batched.shared_array._bits._bits
        )
        assert batched.estimate_jaccard("alice", "bob") == reference.estimate_jaccard(
            "alice", "bob"
        )

    def test_float_ids_fall_back_instead_of_truncating(self):
        """Regression: np.fromiter would cast 1.5 -> 1; the fallback must kick in."""
        elements = [
            StreamElement(1.5, 10, Action.INSERT),
            StreamElement(1, 10, Action.INSERT),
            StreamElement(2, 2.5, Action.INSERT),
        ]
        reference = VirtualOddSketch(shared_array_bits=512, virtual_sketch_size=32, seed=2)
        batched = VirtualOddSketch(shared_array_bits=512, virtual_sketch_size=32, seed=2)
        sharded_reference = ShardedVOS(4, 128, 32, seed=2)
        sharded_batched = ShardedVOS(4, 128, 32, seed=2)
        for element in elements:
            reference.process(element)
            sharded_reference.process(element)
        batched.process_batch(elements)
        sharded_batched.process_batch(elements)
        assert batched._cardinalities == reference._cardinalities == {1.5: 1, 1: 1, 2: 1}
        assert np.array_equal(
            reference.shared_array._bits._bits, batched.shared_array._bits._bits
        )
        for shard_a, shard_b in zip(sharded_reference.shards, sharded_batched.shards):
            assert shard_a._cardinalities == shard_b._cardinalities
            assert np.array_equal(
                shard_a.shared_array._bits._bits, shard_b.shared_array._bits._bits
            )

    def test_generator_input_is_accepted(self):
        vos = VirtualOddSketch(shared_array_bits=512, virtual_sketch_size=32)
        count = vos.process_batch(
            StreamElement(1, item, Action.INSERT) for item in range(10)
        )
        assert count == 10
        assert vos.cardinality(1) == 10


class TestIterBatchesArrayNative:
    """iter_batches accepts ElementBatch sources and always yields batches."""

    def test_yields_element_batches(self):
        from repro.streams.batch import ElementBatch

        elements = [StreamElement(1, i, Action.INSERT) for i in range(10)]
        batches = list(iter_batches(elements, 4))
        assert all(isinstance(batch, ElementBatch) for batch in batches)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_single_batch_source_is_sliced(self):
        from repro.streams.batch import ElementBatch

        elements = [StreamElement(1, i, Action.INSERT) for i in range(10)]
        source = ElementBatch.from_elements(elements)
        batches = list(iter_batches(source, 3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert [e for batch in batches for e in batch] == elements

    def test_batch_iterable_source_is_rechunked(self):
        from repro.streams.batch import ElementBatch

        elements = [StreamElement(1, i, Action.INSERT) for i in range(12)]
        source = [
            ElementBatch.from_elements(elements[:7]),
            ElementBatch.from_elements(elements[7:]),
        ]
        batches = list(iter_batches(source, 5))
        assert [e for batch in batches for e in batch] == elements
        assert all(len(b) <= 5 for b in batches)

    def test_mixed_source_preserves_order(self):
        from repro.streams.batch import ElementBatch

        elements = [StreamElement(1, i, Action.INSERT) for i in range(9)]
        source = [
            elements[0],
            elements[1],
            ElementBatch.from_elements(elements[2:6]),
            elements[6],
            elements[7],
            elements[8],
        ]
        batches = list(iter_batches(source, 4))
        assert [e for batch in batches for e in batch] == elements

    def test_ingest_from_batches_matches_ingest_from_elements(self, parity_stream):
        from repro.streams.batch import ElementBatch

        from_elements = VirtualOddSketch(
            shared_array_bits=16384, virtual_sketch_size=256, seed=3
        )
        from_batches = VirtualOddSketch(
            shared_array_bits=16384, virtual_sketch_size=256, seed=3
        )
        ingest_stream(from_elements, parity_stream, batch_size=512)
        whole = ElementBatch.from_elements(list(parity_stream))
        ingest_stream(from_batches, whole, batch_size=512)
        assert np.array_equal(
            from_elements.shared_array._bits._bits,
            from_batches.shared_array._bits._bits,
        )
        assert from_elements._cardinalities == from_batches._cardinalities


class TestIngestReportPhases:
    def test_phase_timings_are_recorded(self, parity_stream):
        sketch = ShardedVOS(4, 4096, 128, seed=9)
        report = ingest_stream(sketch, parity_stream, batch_size=512)
        assert report.workers == 1
        assert report.assemble_seconds >= 0.0
        assert report.process_seconds > 0.0
        assert report.seconds >= report.process_seconds

    def test_workers_recorded_for_parallel_runs(self, parity_stream):
        sketch = ShardedVOS(4, 4096, 128, seed=9)
        report = ingest_stream(sketch, parity_stream, batch_size=512, workers=2)
        assert report.workers == 2

    def test_plain_vos_ignores_workers(self, parity_stream):
        sketch = VirtualOddSketch(shared_array_bits=4096, virtual_sketch_size=128)
        report = ingest_stream(sketch, parity_stream, batch_size=512, workers=8)
        assert report.workers == 1
        assert report.elements == len(parity_stream)
