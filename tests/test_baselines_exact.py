"""Tests for repro.baselines.exact."""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactSimilarityTracker
from repro.streams.edge import Action, StreamElement


def _build(stream):
    tracker = ExactSimilarityTracker()
    tracker.process_stream(stream)
    return tracker


class TestExactTracker:
    def test_matches_stream_replay(self, small_dynamic_stream):
        tracker = _build(small_dynamic_stream)
        expected = small_dynamic_stream.item_sets_at(None)
        for user, items in expected.items():
            assert tracker.item_set(user) == items

    def test_common_items_and_jaccard(self, tiny_stream):
        tracker = _build(tiny_stream)
        # final sets: S1 = {10, 12}, S2 = {10}, S3 = {10}
        assert tracker.estimate_common_items(1, 2) == 1.0
        assert tracker.estimate_jaccard(1, 2) == pytest.approx(1 / 2)
        assert tracker.estimate_common_items(2, 3) == 1.0
        assert tracker.estimate_jaccard(2, 3) == pytest.approx(1.0)

    def test_symmetric_difference(self, tiny_stream):
        tracker = _build(tiny_stream)
        assert tracker.symmetric_difference(1, 2) == 1
        assert tracker.symmetric_difference(2, 3) == 0

    def test_unknown_users_give_zero_similarity(self, tiny_stream):
        tracker = _build(tiny_stream)
        assert tracker.estimate_common_items(1, 999) == 0.0
        assert tracker.estimate_jaccard(1, 999) == 0.0

    def test_item_set_of_unknown_user_is_empty(self):
        assert ExactSimilarityTracker().item_set(5) == set()

    def test_deletion_removes_item(self):
        tracker = ExactSimilarityTracker()
        tracker.process(StreamElement(1, 10, Action.INSERT))
        tracker.process(StreamElement(1, 10, Action.DELETE))
        assert tracker.item_set(1) == set()
        assert tracker.cardinality(1) == 0

    def test_memory_bits_scales_with_live_edges(self):
        tracker = ExactSimilarityTracker()
        assert tracker.memory_bits() == 0
        tracker.process(StreamElement(1, 10, Action.INSERT))
        tracker.process(StreamElement(2, 10, Action.INSERT))
        assert tracker.memory_bits() == 128

    def test_jaccard_identity_with_common_items(self, small_dynamic_stream):
        """J = s / (n_u + n_v - s) must hold exactly for the exact tracker."""
        tracker = _build(small_dynamic_stream)
        users = sorted(tracker.users())[:10]
        for index, user_a in enumerate(users):
            for user_b in users[index + 1 :]:
                s = tracker.estimate_common_items(user_a, user_b)
                n_a = tracker.cardinality(user_a)
                n_b = tracker.cardinality(user_b)
                expected = s / (n_a + n_b - s) if (n_a + n_b - s) > 0 else 1.0
                assert tracker.estimate_jaccard(user_a, user_b) == pytest.approx(expected)
