"""Tests for repro.baselines.bbit."""

from __future__ import annotations

import pytest

from repro.baselines.bbit import BBitMinHash
from repro.exceptions import ConfigurationError
from repro.streams.edge import Action, StreamElement


def _insert_sets(sketch, set_a, set_b):
    for item in set_a:
        sketch.process(StreamElement(1, item, Action.INSERT))
    for item in set_b:
        sketch.process(StreamElement(2, item, Action.INSERT))


class TestBBitMinHash:
    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            BBitMinHash(8, bits=0)
        with pytest.raises(ConfigurationError):
            BBitMinHash(8, bits=33)

    def test_identical_sets_estimate_one(self):
        sketch = BBitMinHash(128, bits=2, seed=1)
        items = set(range(150))
        _insert_sets(sketch, items, items)
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(1.0, abs=0.05)

    def test_disjoint_sets_estimate_near_zero(self):
        sketch = BBitMinHash(256, bits=4, seed=2)
        _insert_sets(sketch, set(range(0, 200)), set(range(200, 400)))
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(0.0, abs=0.15)

    def test_collision_correction_improves_over_raw_fraction(self):
        """With b=1 half of disagreeing registers collide by chance; the
        corrected estimate must sit well below the raw match fraction."""
        sketch = BBitMinHash(512, bits=1, seed=3)
        _insert_sets(sketch, set(range(0, 300)), set(range(300, 600)))
        raw_matches = 0
        values_a, _ = sketch._registers_for(1)
        values_b, _ = sketch._registers_for(2)
        for a, b in zip(values_a, values_b):
            if a is not None and b is not None and (a & 1) == (b & 1):
                raw_matches += 1
        raw_fraction = raw_matches / 512
        assert raw_fraction > 0.3  # collisions inflate the raw fraction
        assert sketch.estimate_jaccard(1, 2) < raw_fraction

    def test_partial_overlap_estimate(self):
        sketch = BBitMinHash(512, bits=8, seed=4)
        set_a = set(range(0, 400))
        set_b = set(range(200, 600))
        _insert_sets(sketch, set_a, set_b)
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(200 / 600, abs=0.12)

    def test_estimate_common_items_uses_cardinalities(self):
        sketch = BBitMinHash(256, bits=8, seed=5)
        items = set(range(100))
        _insert_sets(sketch, items, items)
        assert sketch.estimate_common_items(1, 2) == pytest.approx(100, rel=0.2)

    def test_memory_is_b_bits_per_register(self):
        sketch = BBitMinHash(64, bits=2, seed=6)
        _insert_sets(sketch, {1}, {2})
        assert sketch.memory_bits() == 2 * 64 * 2

    def test_empty_users_estimate_zero(self):
        sketch = BBitMinHash(16, bits=1, seed=7)
        sketch.process(StreamElement(1, 5, Action.INSERT))
        sketch.process(StreamElement(1, 5, Action.DELETE))
        sketch.process(StreamElement(2, 6, Action.INSERT))
        sketch.process(StreamElement(2, 6, Action.DELETE))
        assert sketch.estimate_jaccard(1, 2) == 0.0

    def test_name(self):
        assert BBitMinHash(4).name == "bBitMinHash"
