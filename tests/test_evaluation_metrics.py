"""Tests for repro.evaluation.metrics."""

from __future__ import annotations

import math

import pytest

from repro.evaluation.metrics import (
    average_absolute_percentage_error,
    average_root_mean_square_error,
    mean_absolute_error,
    root_mean_square_error,
)
from repro.exceptions import ConfigurationError


class TestAAPE:
    def test_perfect_estimates_give_zero(self):
        assert average_absolute_percentage_error([10, 20, 30], [10, 20, 30]) == 0.0

    def test_known_value(self):
        # errors: |10-12|/10 = 0.2, |20-15|/20 = 0.25 -> mean 0.225
        assert average_absolute_percentage_error([10, 20], [12, 15]) == pytest.approx(0.225)

    def test_zero_truth_values_are_skipped(self):
        assert average_absolute_percentage_error([0, 10], [5, 11]) == pytest.approx(0.1)

    def test_all_zero_truths_give_nan(self):
        assert math.isnan(average_absolute_percentage_error([0, 0], [1, 2]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            average_absolute_percentage_error([1, 2], [1])

    def test_empty_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            average_absolute_percentage_error([], [])

    def test_symmetric_in_sign_of_error(self):
        over = average_absolute_percentage_error([10], [12])
        under = average_absolute_percentage_error([10], [8])
        assert over == pytest.approx(under)


class TestARMSE:
    def test_perfect_estimates_give_zero(self):
        assert average_root_mean_square_error([0.1, 0.5], [0.1, 0.5]) == 0.0

    def test_known_value(self):
        # squared errors 0.01 and 0.04 -> mean 0.025 -> sqrt = 0.1581...
        assert average_root_mean_square_error([0.5, 0.2], [0.4, 0.4]) == pytest.approx(
            math.sqrt(0.025)
        )

    def test_alias_matches(self):
        truth, estimates = [0.1, 0.9, 0.3], [0.2, 0.7, 0.3]
        assert root_mean_square_error(truth, estimates) == average_root_mean_square_error(
            truth, estimates
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            average_root_mean_square_error([1], [1, 2])

    def test_larger_errors_give_larger_metric(self):
        small = average_root_mean_square_error([0.5], [0.55])
        large = average_root_mean_square_error([0.5], [0.9])
        assert large > small


class TestMAE:
    def test_known_value(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 5]) == pytest.approx(1.0)

    def test_zero_for_perfect(self):
        assert mean_absolute_error([4, 4], [4, 4]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_error([], [])
