"""Tests for repro.streams.deletions."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.streams.deletions import (
    MassiveDeletionModel,
    NoDeletionModel,
    SlidingWindowDeletionModel,
    UniformDeletionModel,
)
from repro.streams.stream import GraphStream, build_dynamic_stream


def _grid_edges(num_users: int, num_items: int):
    return [(u, i) for u in range(num_users) for i in range(num_items)]


class TestNoDeletionModel:
    def test_never_deletes(self):
        model = NoDeletionModel()
        assert list(model.deletions_after_insertion(inserted=(1, 1), live_edges=[(1, 1)], time=1)) == []


class TestMassiveDeletionModel:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MassiveDeletionModel(period=0)
        with pytest.raises(ConfigurationError):
            MassiveDeletionModel(period=10, deletion_probability=1.5)

    def test_no_deletions_before_period(self):
        model = MassiveDeletionModel(period=100, deletion_probability=0.5, seed=1)
        stream = build_dynamic_stream(_grid_edges(5, 10), model)
        assert stream.statistics().deletions == 0

    def test_mass_deletion_occurs_each_period(self):
        model = MassiveDeletionModel(period=50, deletion_probability=0.5, seed=1)
        stream = build_dynamic_stream(_grid_edges(10, 20), model)
        stats = stream.statistics()
        assert stats.deletions > 0
        # Expected roughly half of the live edges at each of the events.
        assert stats.deletions < stats.insertions

    def test_probability_one_deletes_everything(self):
        model = MassiveDeletionModel(period=10, deletion_probability=1.0, seed=1)
        stream = build_dynamic_stream(_grid_edges(2, 10), model)
        # After every 10th insertion all live edges are deleted.
        sets = stream.item_sets_at(None)
        live = sum(len(items) for items in sets.values())
        assert live == 0

    def test_probability_zero_deletes_nothing(self):
        model = MassiveDeletionModel(period=10, deletion_probability=0.0, seed=1)
        stream = build_dynamic_stream(_grid_edges(2, 10), model)
        assert stream.statistics().deletions == 0

    def test_deterministic_given_seed(self):
        streams = [
            build_dynamic_stream(
                _grid_edges(6, 15),
                MassiveDeletionModel(period=20, deletion_probability=0.5, seed=9),
            )
            for _ in range(2)
        ]
        assert list(streams[0]) == list(streams[1])

    def test_resulting_stream_feasible(self):
        model = MassiveDeletionModel(period=25, deletion_probability=0.7, seed=2)
        stream = build_dynamic_stream(_grid_edges(8, 12), model)
        GraphStream(stream.elements)  # must not raise


class TestUniformDeletionModel:
    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            UniformDeletionModel(rate=-0.1)
        with pytest.raises(ConfigurationError):
            UniformDeletionModel(rate=1.1)

    def test_rate_zero_never_deletes(self):
        stream = build_dynamic_stream(_grid_edges(4, 10), UniformDeletionModel(rate=0.0))
        assert stream.statistics().deletions == 0

    def test_rate_controls_deletion_volume(self):
        low = build_dynamic_stream(
            _grid_edges(6, 20), UniformDeletionModel(rate=0.1, seed=3)
        ).statistics()
        high = build_dynamic_stream(
            _grid_edges(6, 20), UniformDeletionModel(rate=0.8, seed=3)
        ).statistics()
        assert high.deletions > low.deletions

    def test_feasible(self):
        stream = build_dynamic_stream(
            _grid_edges(5, 25), UniformDeletionModel(rate=0.6, seed=4)
        )
        GraphStream(stream.elements)


class TestSlidingWindowDeletionModel:
    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowDeletionModel(window=0)

    def test_live_edges_never_exceed_window(self):
        window = 15
        stream = build_dynamic_stream(
            _grid_edges(5, 20), SlidingWindowDeletionModel(window=window)
        )
        live: set[tuple[int, int]] = set()
        for element in stream:
            if element.is_insertion:
                live.add(element.edge)
            else:
                live.discard(element.edge)
            # Evictions are emitted immediately after the insertion that
            # overflows the window, so transiently the live set may hold one
            # extra edge; it must never exceed window + 1 and must settle
            # back to the window size.
            assert len(live) <= window + 1
        assert len(live) <= window

    def test_oldest_edges_are_evicted_first(self):
        stream = build_dynamic_stream(
            [(1, 1), (1, 2), (1, 3)], SlidingWindowDeletionModel(window=2)
        )
        deletions = [element.edge for element in stream if element.is_deletion]
        assert deletions == [(1, 1)]
