"""Tests for repro.streams.generators."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.streams.generators import ErdosRenyiBipartiteGenerator, PowerLawBipartiteGenerator


class TestPowerLawGenerator:
    def test_produces_requested_edge_count(self):
        generator = PowerLawBipartiteGenerator(
            num_users=50, num_items=200, num_edges=1500, seed=1
        )
        edges = generator.edges()
        assert len(edges) == 1500

    def test_edges_are_distinct(self):
        generator = PowerLawBipartiteGenerator(
            num_users=30, num_items=100, num_edges=800, seed=2
        )
        edges = generator.edges()
        assert len(set(edges)) == len(edges)

    def test_edges_within_bounds(self):
        generator = PowerLawBipartiteGenerator(
            num_users=20, num_items=40, num_edges=300, seed=3
        )
        for user, item in generator.edges():
            assert 0 <= user < 20
            assert 0 <= item < 40

    def test_deterministic_given_seed(self):
        make = lambda: PowerLawBipartiteGenerator(
            num_users=25, num_items=60, num_edges=400, seed=11
        ).edges()
        assert make() == make()

    def test_different_seeds_differ(self):
        edges_a = PowerLawBipartiteGenerator(25, 60, 400, seed=1).edges()
        edges_b = PowerLawBipartiteGenerator(25, 60, 400, seed=2).edges()
        assert edges_a != edges_b

    def test_degree_distribution_is_skewed(self):
        generator = PowerLawBipartiteGenerator(
            num_users=100, num_items=500, num_edges=5000, user_exponent=0.9, seed=4
        )
        degrees: dict[int, int] = {}
        for user, _ in generator.edges():
            degrees[user] = degrees.get(user, 0) + 1
        ordered = sorted(degrees.values(), reverse=True)
        top_decile = sum(ordered[: len(ordered) // 10])
        assert top_decile > 0.2 * 5000  # heavy tail: top 10% of users own >20% of edges

    def test_can_fill_nearly_complete_graph(self):
        generator = PowerLawBipartiteGenerator(
            num_users=5, num_items=5, num_edges=25, seed=5
        )
        assert len(generator.edges()) == 25

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            PowerLawBipartiteGenerator(0, 10, 5)
        with pytest.raises(ConfigurationError):
            PowerLawBipartiteGenerator(10, 0, 5)
        with pytest.raises(ConfigurationError):
            PowerLawBipartiteGenerator(10, 10, 0)
        with pytest.raises(ConfigurationError):
            PowerLawBipartiteGenerator(3, 3, 10)  # more edges than pairs


class TestErdosRenyiGenerator:
    def test_edge_count_and_distinctness(self):
        generator = ErdosRenyiBipartiteGenerator(
            num_users=30, num_items=30, num_edges=500, seed=6
        )
        edges = generator.edges()
        assert len(edges) == 500
        assert len(set(edges)) == 500

    def test_deterministic(self):
        make = lambda: ErdosRenyiBipartiteGenerator(10, 10, 50, seed=9).edges()
        assert make() == make()

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            ErdosRenyiBipartiteGenerator(0, 10, 5)
        with pytest.raises(ConfigurationError):
            ErdosRenyiBipartiteGenerator(2, 2, 5)
