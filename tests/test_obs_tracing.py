"""Tests for repro.obs.tracing: span semantics and report/registry agreement.

Two properties matter: (a) with the registry disabled, ``trace`` hands back a
shared stateless no-op so instrumented code paths do no extra work, and (b)
:class:`~repro.service.batching.IngestReport` phase timings are sums of the
exact span measurements the registry histograms receive — the report and the
registry can never disagree.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    NOOP_SPAN,
    current_span,
    get_registry,
    set_registry,
    timed,
    trace,
)
from repro.core.memory import MemoryBudget
from repro.service.batching import ingest_stream
from repro.service.sharding import ShardedVOS
from repro.streams.edge import Action, StreamElement


@pytest.fixture(autouse=True)
def _multicore(monkeypatch):
    """Pretend the host has cores: the parallel-report parity test pins the
    threaded path, which on a single-core host falls back to serial ingest."""
    monkeypatch.setattr("repro.service.parallel._cpu_count", lambda: 8)


@pytest.fixture
def registry():
    previous = get_registry()
    fresh = set_registry(MetricsRegistry())
    yield fresh
    set_registry(previous)


class TestNoopSpan:
    def test_disabled_trace_returns_shared_singleton(self, registry):
        registry.disable()
        span = trace("anything")
        assert span is NOOP_SPAN
        assert trace("something.else") is span  # one shared instance

    def test_noop_span_is_inert(self, registry):
        registry.disable()
        with trace("region") as span:
            assert span is NOOP_SPAN
            assert current_span() is None  # no stack entry
        assert span.seconds == 0.0
        assert span.name == "" and span.parent is None and span.path == ""
        assert registry.snapshot()["histograms"] == {}

    def test_noop_span_propagates_exceptions(self, registry):
        registry.disable()
        with pytest.raises(RuntimeError):
            with trace("region"):
                raise RuntimeError("boom")


class TestSpan:
    def test_enabled_trace_records_histogram(self, registry):
        with trace("query.block") as span:
            pass
        assert span.seconds >= 0.0
        histogram = registry.histogram("query.block")
        assert histogram.count == 1
        assert histogram.sum == span.seconds

    def test_nesting_parent_and_path(self, registry):
        with trace("outer") as outer:
            assert current_span() is outer
            with trace("inner") as inner:
                assert current_span() is inner
                assert inner.parent is outer
                assert inner.path == "outer/inner"
            assert current_span() is outer
        assert current_span() is None
        assert registry.histogram("outer").count == 1
        assert registry.histogram("inner").count == 1

    def test_span_records_even_when_body_raises(self, registry):
        with pytest.raises(ValueError):
            with trace("failing"):
                raise ValueError("boom")
        assert current_span() is None  # stack unwound
        assert registry.histogram("failing").count == 1

    def test_explicit_registry_overrides_default(self, registry):
        private = MetricsRegistry()
        with trace("region", private):
            pass
        assert private.histogram("region").count == 1
        assert "region" not in registry.snapshot()["histograms"]


class TestTimed:
    def test_timed_measures_when_disabled(self, registry):
        registry.disable()
        with timed("phase") as span:
            sum(range(1000))
        assert span.seconds > 0.0  # measurement always happens...
        assert registry.snapshot()["histograms"] == {}  # ...publication does not

    def test_timed_publishes_when_enabled(self, registry):
        with timed("phase") as span:
            pass
        assert registry.histogram("phase").count == 1
        assert registry.histogram("phase").sum == span.seconds


class TestIngestReportParity:
    """Satellite: IngestReport timings come from the same spans as the registry."""

    def _stream(self, n=500):
        return [StreamElement(i % 10, 1000 + i, Action.INSERT) for i in range(n)]

    def _sketch(self):
        budget = MemoryBudget(baseline_registers=24, num_users=64)
        return ShardedVOS.from_budget(budget, num_shards=4, seed=7)

    def test_report_equals_registry_histograms_exactly(self, registry):
        report = ingest_stream(self._sketch(), self._stream(), batch_size=100)
        # Exact float equality: both sides sum the very same span.seconds.
        assert registry.histogram("ingest.assemble").sum == report.assemble_seconds
        assert registry.histogram("ingest.process").sum == report.process_seconds
        assert registry.histogram("ingest.run").sum == report.seconds
        assert registry.histogram("ingest.run").count == 1
        assert registry.counter("ingest.elements").value == report.elements
        assert registry.counter("ingest.batches").value == report.batches
        assert registry.gauge("ingest.elements_per_second").value == (
            report.elements_per_second
        )

    def test_report_still_timed_with_registry_disabled(self, registry):
        registry.disable()
        report = ingest_stream(self._sketch(), self._stream(), batch_size=100)
        assert report.elements == 500
        assert report.seconds > 0.0
        assert report.process_seconds > 0.0
        assert registry.snapshot()["histograms"] == {}

    def test_parallel_report_equals_registry(self, registry):
        report = ingest_stream(
            self._sketch(), self._stream(), batch_size=100, workers=4
        )
        assert report.workers == 4
        assert registry.histogram("ingest.process").sum == report.process_seconds
        assert registry.counter("ingest.worker_elements").value == report.elements
