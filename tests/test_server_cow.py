"""Copy-on-write epoch publishing: parity, noops, dirty tracking, isolation.

The acceptance bar for :mod:`repro.server.cow`: a daemon publishing COW
dirty-word overlays must answer every query bit-identically (``==``) to a
daemon doing full-state freezes over the *same* ingest history — including
delete-heavy batches that cancel inserts and users that are re-inserted
after deletion.  No-op publishes (zero dirty words) must short-circuit
without serializing anything, pinned readers must keep their overlay across
later publishes, and the epoch dirty channel must stay independent of the
journal's persistence channel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vos import VirtualOddSketch
from repro.obs import get_registry
from repro.server import CowEpochPublisher, ServingClient, ServingDaemon
from repro.server.cow import LayeredCounts
from repro.service import ServiceConfig
from repro.service.service import SimilarityService
from repro.streams import Action, StreamElement


def _inserts(users, items) -> list[StreamElement]:
    return [StreamElement(u, i, Action.INSERT) for u in users for i in items]


def _deletes(users, items) -> list[StreamElement]:
    return [StreamElement(u, i, Action.DELETE) for u in users for i in items]


def _sharded_service(seed: int = 19) -> SimilarityService:
    return SimilarityService.from_config(
        ServiceConfig(expected_users=300, num_shards=4, seed=seed)
    )


def _plain_service(seed: int = 19) -> SimilarityService:
    sketch = VirtualOddSketch(
        shared_array_bits=1 << 14, virtual_sketch_size=256, seed=seed
    )
    return SimilarityService(sketch)


#: Ingest rounds covering the hard cases: plain growth, a delete-heavy batch
#: that cancels earlier inserts exactly, and users re-inserted after deletion.
ROUNDS = [
    _inserts(range(30), range(12)),
    _inserts(range(25, 45), range(8, 20)),
    _deletes(range(10), range(12)),  # cancels round 1 exactly for users 0..9
    _inserts(range(5), range(12)) + _inserts(range(5), range(40, 44)),  # re-insert
    _deletes(range(40, 45), range(8, 14)) + _inserts(range(60, 70), range(6)),
]


class TestCowFullParity:
    @pytest.mark.parametrize("build", [_sharded_service, _plain_service])
    def test_daemons_answer_bit_identically(self, build):
        with ServingDaemon(build(), workers=2, epoch_mode="cow") as cow_daemon:
            with ServingDaemon(build(), workers=2, epoch_mode="full") as full_daemon:
                with ServingClient(*cow_daemon.address) as cow:
                    with ServingClient(*full_daemon.address) as full:
                        for batch in ROUNDS:
                            c = cow.ingest_batch(batch)
                            f = full.ingest_batch(batch)
                            assert c["epoch"] == f["epoch"]
                            assert c["publish_mode"] == "cow"
                            assert f["publish_mode"] == "full"
                            assert cow.top_k_pairs(k=15) == full.top_k_pairs(k=15)
                            assert cow.nearest(3, k=8) == full.nearest(3, k=8)
                            probes = [(0, 1), (3, 27), (12, 25), (8, 9)]
                            assert cow.estimate_many(probes) == full.estimate_many(
                                probes
                            )
                        # LSH candidate generation sees identical signatures too.
                        assert cow.top_k_pairs(k=10, candidates="lsh") == (
                            full.top_k_pairs(k=10, candidates="lsh")
                        )
                        cow_stats = cow.stats()
                        full_stats = full.stats()
                        assert cow_stats["users"] == full_stats["users"]
                        assert cow_stats["server"]["publish_mode"] == "cow"
                        assert full_stats["server"]["publish_mode"] == "full"

    def test_publisher_matches_full_freeze_after_rebase(self):
        writer = _sharded_service(seed=5)
        writer.ingest(ROUNDS[0])
        publisher = CowEpochPublisher(writer, rebase_fraction=0.0)  # rebase always
        publisher.materialize()
        frozen = None
        for batch in ROUNDS[1:]:
            writer.ingest(batch)
            frozen = publisher.publish_delta(writer.freeze_delta())
        reference = SimilarityService.from_state_bytes(
            writer.dumps_state(),
            index_config=writer.index_config,
            elements_ingested=writer.elements_ingested,
        )
        assert frozen.top_k_pairs(k=20) == reference.top_k_pairs(k=20)
        assert publisher.stats()["rebases"] >= 1
        publisher.close()


class TestNoopPublish:
    def test_empty_batch_short_circuits(self):
        service = _sharded_service(seed=7)
        service.ingest(ROUNDS[0])
        with ServingDaemon(service, workers=2, epoch_mode="cow") as daemon:
            registry = get_registry()
            before = registry.snapshot()
            publishes_before = (
                before["histograms"]
                .get("server.epoch.publish", {})
                .get("count", 0)
            )
            with ServingClient(*daemon.address) as client:
                response = client.ingest_batch([])
                assert response["epoch"] == 1  # readers keep their epoch
                assert response["published"] is True
                assert response["publish_mode"] == "noop"
                stats = client.stats()["server"]["epochs"]
                assert stats["noops"] == 1
                assert stats["published"] == 1
            after = registry.snapshot()
            # Nothing was serialized, copied, or revived: the publish-latency
            # histogram did not record an observation, only the noop counter.
            publishes_after = (
                after["histograms"].get("server.epoch.publish", {}).get("count", 0)
            )
            assert publishes_after == publishes_before
            assert daemon.epochs.stats()["noops"] == 1
            assert len(daemon.publish_log) == 0

    def test_cancelling_batch_still_publishes(self):
        # Insert+delete of the same items nets to zero bit flips, but the
        # dirty superset guarantee means the words are marked — the publish
        # must run (and stay correct), not silently no-op.
        service = _plain_service(seed=9)
        service.ingest(ROUNDS[0])
        with ServingDaemon(service, workers=2, epoch_mode="cow") as daemon:
            with ServingClient(*daemon.address) as client:
                batch = _inserts([99], range(5)) + _deletes([99], range(5))
                response = client.ingest_batch(batch)
                assert response["publish_mode"] == "cow"
                assert response["epoch"] == 2


class TestEpochDirtyTracking:
    def test_dirty_words_cover_changed_words_under_xor_bulk(self):
        """Cancelled and re-inserted users produce dirty sets ⊇ changed words."""
        service = _sharded_service(seed=13)
        service.ingest(ROUNDS[0])
        service.clear_epoch_dirty()
        shards = list(service._sketch.row_shards())
        before = [shard.shared_array.bits_buffer().copy() for shard in shards]
        counts_before = [dict(shard._cardinalities) for shard in shards]
        # Delete-heavy batch: exact cancellation for users 0..9, then re-insert.
        service.ingest(ROUNDS[2])
        service.ingest(ROUNDS[3])
        for shard, old_bits, old_counts in zip(shards, before, counts_before):
            new_bits = shard.shared_array.bits_buffer()
            # The buffer is byte-per-bit, so bit index // 64 is the word.
            changed = {
                int(bit) // 64 for bit in np.flatnonzero(old_bits != new_bits)
            }
            dirty = {int(word) for word in shard.shared_array.epoch_dirty_words()}
            assert changed <= dirty
            changed_counters = {
                user
                for user in set(old_counts) | set(shard._cardinalities)
                if old_counts.get(user) != shard._cardinalities.get(user)
            }
            assert changed_counters <= set(shard.epoch_dirty_counter_users())

    def test_freeze_delta_leaves_journal_channel_intact(self, tmp_path):
        """Epoch publishes must not eat the words the journal still has to ship."""
        service = _sharded_service(seed=17)
        service.ingest(ROUNDS[0])
        snapshot = tmp_path / "state.vos"
        service.save(snapshot)
        service.ingest(ROUNDS[1])
        service.ingest(ROUNDS[2])
        persistence_dirty = service._sketch.dirty_info()["dirty_words"]
        assert persistence_dirty > 0
        delta = service.freeze_delta()  # clears the *epoch* channel only
        assert sum(entry["words"].size for entry in delta["shards"]) > 0
        assert service._sketch.dirty_info()["dirty_words"] == persistence_dirty
        assert service.epoch_dirty_info()["dirty_words"] == 0
        service.save_delta()
        revived = SimilarityService.load(snapshot)
        assert revived.top_k_pairs(k=20) == service.top_k_pairs(k=20)

    def test_clear_epoch_dirty_is_independent_of_clear_dirty(self):
        service = _plain_service(seed=21)
        service.ingest(ROUNDS[0])
        info = service.epoch_dirty_info()
        assert info["dirty_words"] > 0 and info["dirty_counters"] > 0
        service._sketch.clear_dirty()  # journal checkpoint path
        info = service.epoch_dirty_info()
        assert info["dirty_words"] > 0 and info["dirty_counters"] > 0
        service.clear_epoch_dirty()
        assert service.epoch_dirty_info() == {"dirty_words": 0, "dirty_counters": 0}


class TestReaderIsolation:
    def test_pinned_reader_keeps_old_overlay_across_publishes(self):
        service = _sharded_service(seed=23)
        service.ingest(ROUNDS[0])
        with ServingDaemon(service, workers=2, epoch_mode="cow") as daemon:
            with daemon.epochs.pin() as pinned:
                old_pairs = pinned.service.top_k_pairs(k=10)
                old_users = pinned.service.stats()["users"]
                with ServingClient(*daemon.address) as client:
                    client.ingest_batch(ROUNDS[1])
                    client.ingest_batch(ROUNDS[2])
                    assert client.epoch >= 3
                # The pinned epoch still answers from its own overlay.
                assert pinned.service.top_k_pairs(k=10) == old_pairs
                assert pinned.service.stats()["users"] == old_users
                assert not pinned.retired
            assert daemon.epochs.live_epochs == 1  # released epoch drained


class TestLayeredCounts:
    def test_mapping_semantics(self):
        base = {"a": 3, "b": 1}
        layered = LayeredCounts(base, {"b": 5, "c": 2})
        assert layered["a"] == 3 and layered["b"] == 5 and layered["c"] == 2
        assert layered.get("missing") is None
        assert len(layered) == 3
        assert sorted(layered) == ["a", "b", "c"]
        assert dict(layered) == {"a": 3, "b": 5, "c": 2}
