"""Tests for the ``repro kernels`` CLI subcommand.

The status table must reflect the dispatch layer's resolution (tier, probe
status, block sizing) and ``--bench`` must time both tiers on a synthetic
block while asserting their bit-identity.
"""

from __future__ import annotations

import logging

import pytest

from repro import kernels
from repro.cli import main


@pytest.fixture(autouse=True)
def restore_logging():
    """main() reconfigures root logging (force=True); undo it after each test."""
    root = logging.getLogger()
    level, handlers = root.level, list(root.handlers)
    yield
    root.setLevel(level)
    root.handlers[:] = handlers


def test_kernels_status_table(capsys):
    assert main(["kernels"]) == 0
    output = capsys.readouterr().out
    assert "requested tier" in output
    assert "active tier" in output
    active = kernels.active_tier()
    assert active in output


def test_kernels_status_csv(capsys):
    assert main(["kernels", "--csv"]) == 0
    output = capsys.readouterr().out
    assert "field,value" in output
    assert "numpy popcount," in output


def test_kernels_forced_numpy(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    assert main(["kernels", "--csv"]) == 0
    output = capsys.readouterr().out
    assert "requested tier,numpy" in output
    assert "active tier,numpy" in output


def test_kernels_bench_times_both_tiers(capsys):
    assert (
        main(
            [
                "kernels",
                "--bench",
                "--users",
                "64",
                "--pairs",
                "2000",
                "--sketch-size",
                "256",
                "--csv",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "micro-timing" in output
    assert "tiers bit-identical" in output
    assert "\nnumpy," in output
    if kernels.kernel_info()["native"]["available"]:
        assert "\nnative," in output


def test_kernels_bench_small_sketch(capsys):
    """k=63 exercises the single-word row layout end to end."""
    assert (
        main(
            ["kernels", "--bench", "--users", "32", "--pairs", "500", "--sketch-size", "63"]
        )
        == 0
    )
    assert "micro-timing" in capsys.readouterr().out
