"""Tests for repro.hashing.bitpack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.hashing.bitpack import PackedBitArray, PackedRegisters


class TestPackedBitArray:
    def test_initial_state_all_zero(self):
        bits = PackedBitArray(16)
        assert len(bits) == 16
        assert bits.ones_count == 0
        assert bits.to_list() == [0] * 16

    def test_flip_toggles_and_counts(self):
        bits = PackedBitArray(8)
        assert bits.flip(2) == 1
        assert bits.ones_count == 1
        assert bits.flip(2) == 0
        assert bits.ones_count == 0

    def test_set_is_idempotent_on_count(self):
        bits = PackedBitArray(4)
        bits.set(1, 1)
        bits.set(1, 1)
        assert bits.ones_count == 1
        bits.set(1, 0)
        assert bits.ones_count == 0

    def test_xor_value_zero_is_noop(self):
        bits = PackedBitArray(4)
        bits.flip(0)
        assert bits.xor_value(0, 0) == 1
        assert bits.ones_count == 1

    def test_xor_value_one_flips(self):
        bits = PackedBitArray(4)
        assert bits.xor_value(3, 1) == 1
        assert bits.xor_value(3, 1) == 0

    def test_fraction_of_ones(self):
        bits = PackedBitArray(10)
        for index in range(5):
            bits.flip(index)
        assert bits.fraction_of_ones == pytest.approx(0.5)

    def test_gather(self):
        bits = PackedBitArray(6)
        bits.flip(1)
        bits.flip(4)
        assert list(bits.gather([0, 1, 4, 5])) == [0, 1, 1, 0]

    def test_clear(self):
        bits = PackedBitArray(5)
        bits.flip(0)
        bits.clear()
        assert bits.ones_count == 0
        assert bits.to_list() == [0] * 5

    def test_memory_bits_matches_size(self):
        assert PackedBitArray(123).memory_bits() == 123

    def test_iteration(self):
        bits = PackedBitArray(3)
        bits.flip(1)
        assert list(bits) == [0, 1, 0]

    def test_invalid_size_raises(self):
        with pytest.raises(ConfigurationError):
            PackedBitArray(0)

    def test_ones_count_matches_recount_after_random_ops(self):
        import random

        rng = random.Random(1)
        bits = PackedBitArray(64)
        for _ in range(500):
            bits.flip(rng.randrange(64))
        assert bits.ones_count == sum(bits.to_list())


class TestPackedRegisters:
    def test_initially_empty(self):
        registers = PackedRegisters(4, width_bits=32)
        assert len(registers) == 4
        assert all(registers.is_empty(i) for i in range(4))
        assert registers.non_empty_count() == 0

    def test_set_and_get(self):
        registers = PackedRegisters(3)
        registers[1] = 42
        assert registers[1] == 42
        assert not registers.is_empty(1)
        assert registers.non_empty_count() == 1

    def test_reset(self):
        registers = PackedRegisters(3)
        registers[0] = 7
        registers.reset(0)
        assert registers.is_empty(0)

    def test_to_list_uses_none_for_empty(self):
        registers = PackedRegisters(3)
        registers[2] = 5
        assert registers.to_list() == [None, None, 5]

    def test_memory_accounting(self):
        assert PackedRegisters(10, width_bits=32).memory_bits() == 320
        assert PackedRegisters(8, width_bits=1).memory_bits() == 8

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            PackedRegisters(0)
        with pytest.raises(ConfigurationError):
            PackedRegisters(4, width_bits=0)
        with pytest.raises(ConfigurationError):
            PackedRegisters(4, width_bits=65)


class TestXorBulk:
    def test_matches_sequential_flips(self):
        import random

        rng = random.Random(3)
        positions = [rng.randrange(64) for _ in range(500)]
        sequential = PackedBitArray(64)
        bulk = PackedBitArray(64)
        for position in positions:
            sequential.flip(position)
        bulk.xor_bulk(positions)
        assert bulk.to_list() == sequential.to_list()
        assert bulk.ones_count == sequential.ones_count

    def test_repeats_fold_modulo_two(self):
        bits = PackedBitArray(8)
        flipped = bits.xor_bulk([3, 3, 5, 5, 5])
        assert flipped == 1  # only position 5 has an odd count
        assert bits.to_list() == [0, 0, 0, 0, 0, 1, 0, 0]
        assert bits.ones_count == 1

    def test_empty_input_is_a_no_op(self):
        bits = PackedBitArray(8)
        assert bits.xor_bulk([]) == 0
        assert bits.ones_count == 0

    def test_out_of_range_positions_raise(self):
        bits = PackedBitArray(8)
        with pytest.raises(IndexError):
            bits.xor_bulk([8])
        with pytest.raises(IndexError):
            bits.xor_bulk([-1])

    def test_accepts_numpy_arrays(self):
        import numpy as np

        bits = PackedBitArray(16)
        bits.xor_bulk(np.array([1, 2, 2, 3]))
        assert bits.ones_count == 2


class TestPackedBytesRoundTrip:
    def test_round_trip_is_bit_exact(self):
        import random

        rng = random.Random(9)
        bits = PackedBitArray(77)  # deliberately not a multiple of 8
        for _ in range(200):
            bits.flip(rng.randrange(77))
        data = bits.to_packed_bytes()
        assert len(data) == 10
        restored = PackedBitArray(77)
        restored.load_packed_bytes(data)
        assert restored.to_list() == bits.to_list()
        assert restored.ones_count == bits.ones_count

    def test_wrong_length_raises(self):
        bits = PackedBitArray(16)
        with pytest.raises(ConfigurationError):
            bits.load_packed_bytes(b"\x00")

    def test_restored_array_is_writable(self):
        bits = PackedBitArray(8)
        bits.load_packed_bytes(bytes(1))
        bits.flip(0)
        assert bits.ones_count == 1


class TestDirtyWordTracking:
    """The changed-word bitmap behind delta checkpoints."""

    def test_fresh_array_is_clean(self):
        bits = PackedBitArray(256)
        assert bits.dirty_word_count == 0
        assert bits.dirty_words().tolist() == []

    def test_flip_and_set_mark_their_word(self):
        bits = PackedBitArray(256)
        bits.flip(3)
        bits.set(130, 1)
        assert bits.dirty_words().tolist() == [0, 2]
        bits.clear_dirty()
        assert bits.dirty_word_count == 0
        # A set that changes nothing stays clean.
        bits.set(130, 1)
        assert bits.dirty_word_count == 0

    def test_xor_bulk_marks_only_touched_words(self):
        bits = PackedBitArray(64 * 5)
        bits.xor_bulk(np.array([0, 1, 64 * 3 + 2]))
        assert bits.dirty_words().tolist() == [0, 3]
        # Cancelling repeats touch nothing.
        bits.clear_dirty()
        bits.xor_bulk(np.array([7, 7]))
        assert bits.dirty_word_count == 0

    def test_packed_words_match_full_serialization(self):
        import random

        rng = random.Random(3)
        bits = PackedBitArray(77)  # a ragged final word
        for _ in range(120):
            bits.flip(rng.randrange(77))
        full = bits.to_packed_bytes()
        for word in range(bits.num_words):
            chunk = bits.packed_words([word])
            expected = full[8 * word : 8 * (word + 1)]
            assert chunk[: len(expected)] == expected
            assert all(byte == 0 for byte in chunk[len(expected) :])

    def test_apply_packed_words_round_trips_dirty_state(self):
        import random

        rng = random.Random(4)
        source = PackedBitArray(300)
        target = PackedBitArray(300)
        for _ in range(64):
            source.flip(rng.randrange(300))
        source.clear_dirty()
        for _ in range(40):
            source.flip(rng.randrange(300))
        words = source.dirty_words()
        payload = source.packed_words(words)
        # Target starts from the source's pre-mutation state.
        target.load_packed_bytes(source.to_packed_bytes())
        target.apply_packed_words(words, payload)
        assert target.to_list() == source.to_list()
        assert target.ones_count == source.ones_count

    def test_apply_rejects_bad_payloads(self):
        bits = PackedBitArray(100)
        with pytest.raises(ConfigurationError, match="expected"):
            bits.apply_packed_words(np.array([0]), b"\x00" * 7)
        with pytest.raises(ConfigurationError, match="out of range"):
            bits.apply_packed_words(np.array([9]), b"\x00" * 8)
        with pytest.raises(ConfigurationError, match="distinct"):
            bits.apply_packed_words(np.array([0, 0]), b"\x00" * 16)
        # Word 1 covers bits 64..99: the trailing 28 bits are pad and must be 0.
        with pytest.raises(ConfigurationError, match="pad bits"):
            bits.apply_packed_words(np.array([1]), b"\xff" * 8)

    def test_clear_and_load_mark_everything_dirty(self):
        bits = PackedBitArray(128)
        bits.clear_dirty()
        bits.clear()
        assert bits.dirty_word_count == bits.num_words
        bits.clear_dirty()
        bits.load_packed_bytes(bytes(16))
        assert bits.dirty_word_count == bits.num_words
