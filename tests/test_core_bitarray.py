"""Tests for repro.core.bitarray (the shared array A and beta tracker)."""

from __future__ import annotations

import random

import pytest

from repro.core.bitarray import SharedBitArray
from repro.exceptions import ConfigurationError


class TestSharedBitArray:
    def test_initial_state(self):
        array = SharedBitArray(128)
        assert len(array) == 128
        assert array.beta == 0.0
        assert array.ones_count == 0

    def test_xor_bit_sets_and_clears(self):
        array = SharedBitArray(16)
        assert array.xor_bit(5, 1) == 1
        assert array.read_bit(5) == 1
        assert array.xor_bit(5, 1) == 0
        assert array.read_bit(5) == 0

    def test_xor_with_zero_is_noop(self):
        array = SharedBitArray(16)
        array.xor_bit(3, 1)
        assert array.xor_bit(3, 0) == 1
        assert array.ones_count == 1

    def test_beta_tracks_fraction_exactly(self):
        array = SharedBitArray(64)
        rng = random.Random(0)
        for _ in range(1000):
            array.xor_bit(rng.randrange(64), 1)
            expected = sum(array.read_bit(i) for i in range(64)) / 64
            assert array.beta == pytest.approx(expected)

    def test_beta_update_is_plus_minus_one_over_m(self):
        """Each xor changes beta by exactly +-1/m — the paper's O(1) beta rule."""
        m = 100
        array = SharedBitArray(m)
        previous = array.beta
        for position in [3, 3, 7, 7, 7]:
            array.xor_bit(position, 1)
            assert abs(array.beta - previous) == pytest.approx(1.0 / m)
            previous = array.beta

    def test_clear(self):
        array = SharedBitArray(8)
        array.xor_bit(0, 1)
        array.clear()
        assert array.beta == 0.0
        assert array.read_bit(0) == 0

    def test_memory_accounting(self):
        assert SharedBitArray(4096).memory_bits() == 4096

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            SharedBitArray(0)
        with pytest.raises(ConfigurationError):
            SharedBitArray(-1)
