"""Tests for repro.baselines.minhash."""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactSimilarityTracker
from repro.baselines.minhash import DynamicMinHash, StaticMinHash
from repro.exceptions import ConfigurationError, UnknownUserError
from repro.streams.edge import Action, StreamElement


def _insert_sets(sketch, set_a, set_b, user_a=1, user_b=2):
    for item in set_a:
        sketch.process(StreamElement(user_a, item, Action.INSERT))
    for item in set_b:
        sketch.process(StreamElement(user_b, item, Action.INSERT))


class TestDynamicMinHashInsertions:
    def test_identical_sets_have_jaccard_one(self):
        sketch = DynamicMinHash(64, seed=1)
        items = set(range(100))
        _insert_sets(sketch, items, items)
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(1.0)

    def test_disjoint_sets_have_jaccard_near_zero(self):
        sketch = DynamicMinHash(64, seed=1)
        _insert_sets(sketch, set(range(0, 100)), set(range(100, 200)))
        assert sketch.estimate_jaccard(1, 2) < 0.05

    def test_half_overlap_estimate_close(self):
        sketch = DynamicMinHash(256, seed=2)
        set_a = set(range(0, 200))
        set_b = set(range(100, 300))
        _insert_sets(sketch, set_a, set_b)
        true_jaccard = 100 / 300
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(true_jaccard, abs=0.1)

    def test_common_items_estimate_close_on_insert_only(self):
        sketch = DynamicMinHash(256, seed=3)
        set_a = set(range(0, 150))
        set_b = set(range(50, 200))
        _insert_sets(sketch, set_a, set_b)
        assert sketch.estimate_common_items(1, 2) == pytest.approx(100, rel=0.35)

    def test_insertion_order_irrelevant(self):
        items = list(range(50))
        sketch_a = DynamicMinHash(32, seed=5)
        sketch_b = DynamicMinHash(32, seed=5)
        for item in items:
            sketch_a.process(StreamElement(1, item, Action.INSERT))
        for item in reversed(items):
            sketch_b.process(StreamElement(1, item, Action.INSERT))
        assert sketch_a.register_items(1) == sketch_b.register_items(1)


class TestDynamicMinHashDeletions:
    def test_deleting_sampled_item_clears_register(self):
        sketch = DynamicMinHash(16, seed=1)
        sketch.process(StreamElement(1, 42, Action.INSERT))
        assert all(item == 42 for item in sketch.register_items(1))
        sketch.process(StreamElement(1, 42, Action.DELETE))
        assert all(item is None for item in sketch.register_items(1))

    def test_deleting_unsampled_item_keeps_registers(self):
        sketch = DynamicMinHash(8, seed=2)
        for item in range(50):
            sketch.process(StreamElement(1, item, Action.INSERT))
        before = sketch.register_items(1)
        # Find an item not sampled by any register and delete it.
        unsampled = next(item for item in range(50) if item not in set(before))
        sketch.process(StreamElement(1, unsampled, Action.DELETE))
        assert sketch.register_items(1) == before

    def test_deletion_for_unknown_user_is_ignored(self):
        sketch = DynamicMinHash(8, seed=2)
        sketch._process_deletion(StreamElement(9, 1, Action.DELETE))  # no crash

    def test_bias_appears_under_heavy_deletions(self):
        """After deleting most items, the registers no longer represent the
        current set uniformly: many registers are empty, depressing the
        Jaccard estimate of two still-identical sets."""
        sketch = DynamicMinHash(64, seed=4)
        exact = ExactSimilarityTracker()
        items = list(range(200))
        for item in items:
            for user in (1, 2):
                element = StreamElement(user, item, Action.INSERT)
                sketch.process(element)
                exact.process(element)
        for item in items[:150]:
            for user in (1, 2):
                element = StreamElement(user, item, Action.DELETE)
                sketch.process(element)
                exact.process(element)
        assert exact.estimate_jaccard(1, 2) == pytest.approx(1.0)
        assert sketch.estimate_jaccard(1, 2) < 0.9  # systematically below truth


class TestDynamicMinHashMisc:
    def test_register_items_unknown_user_raises(self):
        with pytest.raises(UnknownUserError):
            DynamicMinHash(4).register_items(1)

    def test_invalid_register_count(self):
        with pytest.raises(ConfigurationError):
            DynamicMinHash(0)

    def test_memory_accounting(self):
        sketch = DynamicMinHash(10, register_bits=32)
        _insert_sets(sketch, {1, 2}, {3})
        assert sketch.memory_bits() == 2 * 10 * 32

    def test_name(self):
        assert DynamicMinHash(4).name == "MinHash"


class TestStaticMinHash:
    def test_signature_length(self):
        assert len(StaticMinHash(16).signature(range(10))) == 16

    def test_empty_set_signature_is_all_none(self):
        assert StaticMinHash(8).signature([]) == [None] * 8

    def test_signature_items_belong_to_set(self):
        items = set(range(30))
        signature = StaticMinHash(32, seed=2).signature(items)
        assert all(entry in items for entry in signature)

    def test_estimate_matches_true_jaccard(self):
        minhash = StaticMinHash(512, seed=3)
        set_a = set(range(0, 300))
        set_b = set(range(150, 450))
        true_jaccard = 150 / 450
        assert minhash.estimate_jaccard(set_a, set_b) == pytest.approx(true_jaccard, abs=0.08)

    def test_invalid_register_count(self):
        with pytest.raises(ConfigurationError):
            StaticMinHash(0)
