"""Tests for repro.core.memory (the equal-memory budget translation)."""

from __future__ import annotations

import pytest

from repro.core.memory import MemoryBudget, vos_parameters_for_budget
from repro.exceptions import ConfigurationError


class TestMemoryBudget:
    def test_total_bits_matches_paper_formula(self):
        budget = MemoryBudget(baseline_registers=100, num_users=5000, register_bits=32)
        assert budget.total_bits == 32 * 100 * 5000

    def test_bits_per_user(self):
        budget = MemoryBudget(baseline_registers=100, num_users=10)
        assert budget.bits_per_user() == 3200

    def test_default_register_width_is_32(self):
        assert MemoryBudget(baseline_registers=5, num_users=2).register_bits == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"baseline_registers": 0, "num_users": 10},
            {"baseline_registers": 10, "num_users": 0},
            {"baseline_registers": 10, "num_users": 10, "register_bits": 0},
        ],
    )
    def test_invalid_budgets_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MemoryBudget(**kwargs)


class TestVOSParameterTranslation:
    def test_shared_array_gets_full_budget(self):
        budget = MemoryBudget(baseline_registers=100, num_users=500)
        parameters = vos_parameters_for_budget(budget)
        assert parameters.shared_array_bits == budget.total_bits

    def test_virtual_sketch_size_uses_lambda(self):
        budget = MemoryBudget(baseline_registers=100, num_users=500)
        parameters = vos_parameters_for_budget(budget, size_multiplier=2.0)
        assert parameters.virtual_sketch_size == 2 * 32 * 100
        assert parameters.size_multiplier == 2.0

    def test_lambda_one(self):
        budget = MemoryBudget(baseline_registers=10, num_users=50)
        assert vos_parameters_for_budget(budget, size_multiplier=1.0).virtual_sketch_size == 320

    def test_fractional_lambda_rounds(self):
        budget = MemoryBudget(baseline_registers=10, num_users=50)
        parameters = vos_parameters_for_budget(budget, size_multiplier=0.5)
        assert parameters.virtual_sketch_size == 160

    def test_invalid_lambda(self):
        budget = MemoryBudget(baseline_registers=10, num_users=50)
        with pytest.raises(ConfigurationError):
            vos_parameters_for_budget(budget, size_multiplier=0.0)

    def test_virtual_size_is_capped_at_the_shared_array(self):
        """Degenerate budgets (fewer users than λ) must still yield a buildable sketch."""
        budget = MemoryBudget(baseline_registers=10, num_users=1)
        parameters = vos_parameters_for_budget(budget, size_multiplier=2.0)
        assert parameters.virtual_sketch_size <= parameters.shared_array_bits
        assert parameters.virtual_sketch_size == budget.total_bits
