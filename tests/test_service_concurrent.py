"""Concurrent reads during mutation: the epoch contract at the service layer.

The serving daemon's guarantee bottoms out here: reader threads hammering a
published (immutable) :class:`SimilarityService` copy while a writer ingests
and publishes successors must never raise and never observe a torn state.
"Never torn" is checked exactly: before each publish the writer computes a
fingerprint of the frozen copy — ``(epoch id, elements ingested, top-k
answer)`` — and every observation a reader makes must equal one of those
fingerprints bit-for-bit.
"""

from __future__ import annotations

import threading
import time

from repro.core.vos import VirtualOddSketch
from repro.server.epochs import EpochManager
from repro.service.service import SimilarityService
from repro.streams import Action, StreamElement

READERS = 6
WRITER_ROUNDS = 8
TOP_K = 5


def _elements(base_user: int, users: int = 3, items: int = 12) -> list[StreamElement]:
    return [
        StreamElement(base_user + offset, base_user + offset + item, Action.INSERT)
        for offset in range(users)
        for item in range(items)
    ]


def _freeze(writer: SimilarityService) -> SimilarityService:
    return SimilarityService.from_state_bytes(
        writer.dumps_state(), elements_ingested=writer.elements_ingested
    )


def _fingerprint(epoch_id: int, service: SimilarityService) -> tuple:
    pairs = tuple(
        (pair.user_a, pair.user_b, pair.jaccard, pair.common_items)
        for pair in service.top_k_pairs(k=TOP_K)
    )
    return (epoch_id, service.elements_ingested, pairs)


def test_concurrent_reads_never_tear_while_the_writer_publishes():
    writer = SimilarityService(
        VirtualOddSketch(shared_array_bits=1 << 14, virtual_sketch_size=192, seed=42)
    )
    writer.ingest(_elements(0, users=20))

    manager = EpochManager(_freeze(writer))
    published: dict[int, tuple] = {1: _fingerprint(1, manager._current.service)}
    published_lock = threading.Lock()

    stop = threading.Event()
    errors: list[Exception] = []
    observations: list[tuple] = []
    observations_lock = threading.Lock()

    def reader() -> None:
        local: list[tuple] = []
        try:
            while not stop.is_set():
                with manager.pin() as epoch:
                    local.append(_fingerprint(epoch.epoch_id, epoch.service))
                    estimates = epoch.service.estimate_many([(0, 1), (2, 3), (4, 5)])
                    assert len(estimates) == 3
        except Exception as error:  # noqa: BLE001 - re-raised via the assert below
            errors.append(error)
        with observations_lock:
            observations.extend(local)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in threads:
        thread.start()
    try:
        for round_index in range(WRITER_ROUNDS):
            writer.ingest(_elements(100 * (round_index + 1)))
            frozen = _freeze(writer)
            expected_epoch = manager.current_epoch + 1
            with published_lock:
                # fingerprint the frozen copy BEFORE readers can pin it, so a
                # torn observation cannot accidentally match
                published[expected_epoch] = _fingerprint(expected_epoch, frozen)
                assert manager.publish(frozen) == expected_epoch
            time.sleep(0.02)  # let readers pin this epoch before the next swap
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert errors == []
    assert len(observations) > 0
    seen_epochs = {fingerprint[0] for fingerprint in observations}
    assert len(seen_epochs) > 1, "readers never overlapped a publish"
    for fingerprint in observations:
        assert fingerprint == published[fingerprint[0]], (
            f"reader observed a torn epoch {fingerprint[0]}"
        )
    # every superseded epoch eventually retired once its readers drained
    stats = manager.stats()
    assert stats["current"] == WRITER_ROUNDS + 1
    assert stats["retired"] == WRITER_ROUNDS
    assert [entry["epoch"] for entry in stats["live"]] == [WRITER_ROUNDS + 1]


def test_pinned_epoch_survives_a_publish_until_released():
    writer = SimilarityService(
        VirtualOddSketch(shared_array_bits=1 << 12, virtual_sketch_size=64, seed=9)
    )
    writer.ingest(_elements(0, users=4))
    manager = EpochManager(_freeze(writer))
    with manager.pin() as epoch:
        writer.ingest(_elements(50))
        manager.publish(_freeze(writer))
        # the pinned epoch still answers from its frozen state
        assert epoch.service is not None
        assert epoch.epoch_id == 1
        assert epoch.service.elements_ingested == 4 * 12
        assert manager.current_epoch == 2
        assert manager.live_epochs == 2
    # released: epoch 1 retires, its service reference is dropped
    assert manager.live_epochs == 1
    assert epoch.retired and epoch.service is None


def test_publish_pause_is_a_pointer_swap():
    """The swap critical section stays microscopic even for big states."""
    writer = SimilarityService(
        VirtualOddSketch(shared_array_bits=1 << 16, virtual_sketch_size=256, seed=1)
    )
    writer.ingest(_elements(0, users=50))
    manager = EpochManager(_freeze(writer))
    from repro.obs import get_registry

    registry = get_registry()
    registry.reset()
    manager.publish(_freeze(writer))
    snapshot = registry.snapshot()
    pause = snapshot["histograms"]["server.epoch.swap_pause"]
    assert pause["count"] == 1
    assert pause["max"] < 0.05, "epoch swap should be a pointer swap, not a copy"
