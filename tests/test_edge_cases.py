"""Edge-case and failure-injection tests across the library.

These cover the awkward inputs a downstream user will eventually hit: empty
streams, users whose sets empty out, single-element streams, extreme memory
budgets, saturated sketches and experiments on degenerate data.
"""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactSimilarityTracker
from repro.baselines.minhash import DynamicMinHash
from repro.baselines.oph import DynamicOPH
from repro.baselines.random_pairing import IndependentRandomPairingSketch
from repro.core.memory import MemoryBudget
from repro.core.vos import VirtualOddSketch
from repro.evaluation.reporting import accuracy_over_time_table, render_table, runtime_table
from repro.evaluation.results import AccuracyResult, RuntimeResult
from repro.evaluation.runtime import RuntimeExperiment
from repro.exceptions import ConfigurationError
from repro.similarity.engine import SimilarityEngine
from repro.similarity.pairs import select_evaluation_pairs
from repro.similarity.search import top_k_similar_pairs
from repro.streams.edge import Action, StreamElement
from repro.streams.stream import GraphStream


def _all_streaming_sketches():
    return [
        VirtualOddSketch(shared_array_bits=4096, virtual_sketch_size=128, seed=1),
        DynamicMinHash(8, seed=1),
        DynamicOPH(8, seed=1),
        IndependentRandomPairingSketch(8, seed=1),
        ExactSimilarityTracker(),
    ]


class TestEmptyAndDegenerateStreams:
    def test_empty_stream_is_valid(self):
        stream = GraphStream([])
        assert len(stream) == 0
        assert stream.users() == set()
        assert stream.statistics().deletion_fraction == 0.0

    def test_single_element_stream(self):
        stream = GraphStream([StreamElement(1, 1)])
        assert stream.checkpoints(5) == [1]
        assert stream.item_sets_at(None) == {1: {1}}

    def test_engine_on_empty_stream(self):
        engine = SimilarityEngine.with_default_sketches(expected_users=1)
        engine.consume(GraphStream([]))
        assert engine.elements_processed == 0

    def test_sketches_on_empty_input_know_no_users(self):
        for sketch in _all_streaming_sketches():
            assert sketch.users() == set()
            assert not sketch.has_user(1)


class TestUsersWhoEmptyOut:
    @pytest.mark.parametrize("sketch", _all_streaming_sketches(), ids=lambda s: type(s).__name__)
    def test_user_with_everything_deleted_reports_zero_similarity(self, sketch):
        for item in range(10):
            sketch.process(StreamElement(1, item, Action.INSERT))
            sketch.process(StreamElement(2, item, Action.INSERT))
        for item in range(10):
            sketch.process(StreamElement(1, item, Action.DELETE))
        assert sketch.cardinality(1) == 0
        assert sketch.estimate_jaccard(1, 2) == pytest.approx(0.0, abs=0.2)

    def test_both_users_empty(self):
        for sketch in _all_streaming_sketches():
            sketch.process(StreamElement(1, 5, Action.INSERT))
            sketch.process(StreamElement(2, 6, Action.INSERT))
            sketch.process(StreamElement(1, 5, Action.DELETE))
            sketch.process(StreamElement(2, 6, Action.DELETE))
            jaccard = sketch.estimate_jaccard(1, 2)
            assert 0.0 <= jaccard <= 1.0


class TestExtremeBudgets:
    def test_minimal_budget_still_works(self):
        budget = MemoryBudget(baseline_registers=1, num_users=1)
        sketch = VirtualOddSketch.from_budget(budget, seed=1)
        sketch.process(StreamElement(1, 1, Action.INSERT))
        sketch.process(StreamElement(2, 1, Action.INSERT))
        assert 0.0 <= sketch.estimate_jaccard(1, 2) <= 1.0

    def test_virtual_sketch_cannot_exceed_shared_array(self):
        with pytest.raises(ConfigurationError):
            VirtualOddSketch(shared_array_bits=16, virtual_sketch_size=64)

    def test_saturated_shared_array_still_returns_valid_estimates(self):
        """Flood a tiny array towards beta ~ 0.5: estimates must stay in range."""
        sketch = VirtualOddSketch(shared_array_bits=256, virtual_sketch_size=64, seed=2)
        for user in range(20):
            for item in range(50):
                sketch.process(StreamElement(user, item + 100 * user, Action.INSERT))
        assert 0.0 <= sketch.beta <= 1.0
        assert 0.0 <= sketch.estimate_jaccard(0, 1) <= 1.0
        assert sketch.estimate_common_items(0, 1) >= 0.0


class TestDegenerateExperimentInputs:
    def test_runtime_experiment_on_tiny_stream(self):
        stream = GraphStream([StreamElement(1, 1), StreamElement(2, 1)], name="tiny")
        result = RuntimeExperiment(methods=("VOS",)).run_sketch_size_sweep(stream, [2])
        assert len(result.measurements) == 1
        assert result.measurements[0].elements == 2

    def test_pair_selection_with_no_overlap_returns_empty(self):
        sets = {1: {1}, 2: {2}, 3: {3}}
        assert select_evaluation_pairs(sets, top_users=3) == []

    def test_top_k_search_with_single_user_returns_nothing(self):
        exact = ExactSimilarityTracker()
        exact.process(StreamElement(1, 1, Action.INSERT))
        assert top_k_similar_pairs(exact, k=5) == []

    def test_reporting_with_empty_results(self):
        assert "t" in accuracy_over_time_table(
            AccuracyResult(dataset="d", baseline_registers=1)
        )
        assert "method" in runtime_table(RuntimeResult())
        assert render_table(["a"], []).count("\n") == 1


class TestIdempotentAndRepeatedQueries:
    def test_estimates_are_pure_queries(self):
        """Querying must not mutate the sketch: repeated calls agree exactly."""
        for sketch in _all_streaming_sketches():
            for item in range(30):
                sketch.process(StreamElement(1, item, Action.INSERT))
                sketch.process(StreamElement(2, item + 15, Action.INSERT))
            first = sketch.estimate_pair(1, 2)
            second = sketch.estimate_pair(1, 2)
            assert first == second

    def test_engine_estimate_all_is_stable(self, tiny_stream):
        engine = SimilarityEngine.with_default_sketches(expected_users=5, include_baselines=True)
        engine.consume(tiny_stream)
        first = engine.estimate_all(1, 2)
        second = engine.estimate_all(1, 2)
        assert first == second
