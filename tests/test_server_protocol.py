"""Unit tests for the serving wire protocol (framing, handshake, codecs)."""

from __future__ import annotations

import socket
import struct
import zlib

import numpy as np
import pytest

from repro._version import __version__
from repro.baselines.base import PairEstimate
from repro.exceptions import ProtocolError
from repro.server import protocol
from repro.similarity.search import ScoredPair
from repro.streams import Action, StreamElement


@pytest.fixture
def pair() -> tuple[socket.socket, socket.socket]:
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = {"op": "ping", "values": [1, 2.5, "x"], "nested": {"a": None}}
        protocol.send_frame(left, payload)
        assert protocol.recv_frame(right) == payload

    def test_multiple_frames_in_sequence(self, pair):
        left, right = pair
        for index in range(5):
            protocol.send_frame(left, {"n": index})
        for index in range(5):
            assert protocol.recv_frame(right) == {"n": index}

    def test_clean_eof_at_frame_boundary_returns_none(self, pair):
        left, right = pair
        protocol.send_frame(left, {"n": 1})
        left.close()
        assert protocol.recv_frame(right) == {"n": 1}
        assert protocol.recv_frame(right) is None

    def test_eof_mid_prefix_raises(self, pair):
        left, right = pair
        left.sendall(protocol.encode_frame({"n": 1})[:3])
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.recv_frame(right)

    def test_eof_mid_body_raises(self, pair):
        left, right = pair
        frame = protocol.encode_frame({"n": 1})
        left.sendall(frame[:-2])
        left.close()
        with pytest.raises(ProtocolError):
            protocol.recv_frame(right)

    def test_corrupted_body_fails_crc(self, pair):
        left, right = pair
        frame = bytearray(protocol.encode_frame({"op": "ping"}))
        frame[-1] ^= 0x40  # flip one bit inside the body
        left.sendall(bytes(frame))
        with pytest.raises(ProtocolError, match="CRC"):
            protocol.recv_frame(right)

    def test_oversized_length_prefix_rejected_before_allocation(self, pair):
        left, right = pair
        left.sendall(struct.pack("<II", protocol.MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(ProtocolError, match="ceiling"):
            protocol.recv_frame(right)

    def test_non_object_body_rejected(self, pair):
        left, right = pair
        body = b"[1, 2, 3]"
        left.sendall(struct.pack("<II", len(body), zlib.crc32(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.recv_frame(right)

    def test_invalid_json_rejected(self, pair):
        left, right = pair
        body = b"{not json"
        left.sendall(struct.pack("<II", len(body), zlib.crc32(body)) + body)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.recv_frame(right)

    def test_numpy_scalars_encode_exactly(self, pair):
        left, right = pair
        protocol.send_frame(
            left,
            {
                "i": np.int64(7),
                "f": np.float64(0.1234567891234567),
                "arr": np.array([1.5, 2.5]),
            },
        )
        received = protocol.recv_frame(right)
        assert received == {"i": 7, "f": 0.1234567891234567, "arr": [1.5, 2.5]}

    def test_unserializable_payload_raises(self):
        with pytest.raises(ProtocolError, match="cannot serialize"):
            protocol.encode_frame({"bad": object()})


class TestHandshake:
    def test_hello_round_trips_and_validates(self):
        hello = protocol.hello_payload(epoch=3)
        assert protocol.check_hello(hello) == hello
        assert hello["version"] == __version__
        assert hello["epoch"] == 3

    def test_missing_hello_is_an_error(self):
        with pytest.raises(ProtocolError, match="before its hello"):
            protocol.check_hello(None)

    def test_wrong_server_rejected(self):
        with pytest.raises(ProtocolError, match="not a repro serving daemon"):
            protocol.check_hello({"server": "other"})

    def test_protocol_mismatch_rejected(self):
        hello = protocol.hello_payload(epoch=1)
        hello["protocol"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="protocol mismatch"):
            protocol.check_hello(hello)

    def test_version_mismatch_fails_loudly(self):
        hello = protocol.hello_payload(epoch=1)
        hello["version"] = "0.0.0-other"
        with pytest.raises(ProtocolError, match="version mismatch"):
            protocol.check_hello(hello)


class TestCodecs:
    def test_scored_pairs_round_trip_bit_identically(self):
        pairs = [
            ScoredPair(user_a=1, user_b=2, jaccard=0.123456789012345, common_items=7.25),
            ScoredPair(user_a="alice", user_b="bob", jaccard=1.0, common_items=3.0),
        ]
        assert protocol.decode_scored_pairs(protocol.encode_scored_pairs(pairs)) == pairs

    def test_estimates_round_trip_bit_identically(self):
        estimates = [
            PairEstimate(1, 2, common_items=5.5, jaccard=0.98765432101),
            PairEstimate("x", "y", common_items=0.0, jaccard=0.0),
        ]
        assert protocol.decode_estimates(protocol.encode_estimates(estimates)) == estimates

    def test_elements_round_trip(self):
        elements = [
            StreamElement(1, 10, Action.INSERT),
            StreamElement(2, 11, Action.DELETE),
            StreamElement("u", "item", Action.INSERT),
        ]
        assert protocol.decode_elements(protocol.encode_elements(elements)) == elements

    def test_bad_element_row_shape_rejected(self):
        with pytest.raises(ProtocolError, match="user, item, action"):
            protocol.decode_elements([[1, 10]])

    def test_bad_element_action_rejected(self):
        with pytest.raises(ProtocolError, match="unknown stream action"):
            protocol.decode_elements([[1, 10, "x"]])
