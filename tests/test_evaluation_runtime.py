"""Tests for repro.evaluation.runtime (the Figure-2 runtime experiment)."""

from __future__ import annotations

import pytest

from repro.evaluation.runtime import RuntimeExperiment
from repro.exceptions import ConfigurationError
from repro.streams.generators import PowerLawBipartiteGenerator
from repro.streams.stream import build_dynamic_stream


@pytest.fixture(scope="module")
def runtime_stream():
    generator = PowerLawBipartiteGenerator(
        num_users=40, num_items=150, num_edges=1200, seed=13
    )
    return build_dynamic_stream(generator.generate_edges(), None, name="runtime-test")


class TestRuntimeExperiment:
    def test_time_method_returns_measurement(self, runtime_stream):
        experiment = RuntimeExperiment(methods=("VOS",))
        measurement = experiment.time_method("VOS", runtime_stream, sketch_size=32)
        assert measurement.method == "VOS"
        assert measurement.dataset == "runtime-test"
        assert measurement.elements == len(runtime_stream)
        assert measurement.seconds > 0

    def test_invalid_sketch_size(self, runtime_stream):
        with pytest.raises(ConfigurationError):
            RuntimeExperiment().time_method("VOS", runtime_stream, sketch_size=0)

    def test_sketch_size_sweep_covers_grid(self, runtime_stream):
        experiment = RuntimeExperiment(methods=("OPH", "VOS"))
        result = experiment.run_sketch_size_sweep(runtime_stream, [8, 32])
        assert len(result.measurements) == 4
        assert set(result.methods()) == {"OPH", "VOS"}
        assert [m.sketch_size for m in result.for_method("VOS")] == [8, 32]

    def test_dataset_sweep_covers_all_streams(self, runtime_stream):
        other = build_dynamic_stream([(1, 1), (1, 2), (2, 1)], None, name="tiny-ds")
        experiment = RuntimeExperiment(methods=("VOS",))
        result = experiment.run_dataset_sweep([runtime_stream, other], sketch_size=16)
        datasets = {m.dataset for m in result.measurements}
        assert datasets == {"runtime-test", "tiny-ds"}

    def test_minhash_slows_down_with_k_while_vos_stays_flat(self, runtime_stream):
        """The qualitative Figure-2 shape: MinHash update cost grows with k,
        VOS's does not (up to noise)."""
        experiment = RuntimeExperiment(methods=("MinHash", "VOS"))
        result = experiment.run_sketch_size_sweep(runtime_stream, [4, 128])
        minhash = {m.sketch_size: m.seconds for m in result.for_method("MinHash")}
        vos = {m.sketch_size: m.seconds for m in result.for_method("VOS")}
        assert minhash[128] > 2.0 * minhash[4]
        assert vos[128] < 5.0 * vos[4]

    def test_unknown_method_raises(self, runtime_stream):
        with pytest.raises(ConfigurationError):
            RuntimeExperiment().time_method("Nope", runtime_stream, sketch_size=8)
