"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigurationError,
    DatasetError,
    EstimationError,
    InfeasibleStreamError,
    ReproError,
    UnknownUserError,
)


@pytest.mark.parametrize(
    "exception_type",
    [ConfigurationError, DatasetError, EstimationError, InfeasibleStreamError, UnknownUserError],
)
def test_all_exceptions_derive_from_repro_error(exception_type):
    assert issubclass(exception_type, ReproError)


def test_infeasible_stream_error_carries_time():
    error = InfeasibleStreamError("bad edge", time=17)
    assert error.time == 17
    assert "bad edge" in str(error)


def test_infeasible_stream_error_time_defaults_to_none():
    assert InfeasibleStreamError("oops").time is None


def test_unknown_user_error_carries_user():
    error = UnknownUserError(42)
    assert error.user == 42
    assert "42" in str(error)


def test_repro_error_is_catchable_as_exception():
    with pytest.raises(Exception):
        raise ReproError("boom")
