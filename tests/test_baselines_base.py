"""Tests for repro.baselines.base (the shared sketch interface helpers)."""

from __future__ import annotations

import pytest

from repro.baselines.base import PairEstimate, common_from_jaccard, jaccard_from_common
from repro.baselines.exact import ExactSimilarityTracker
from repro.exceptions import UnknownUserError
from repro.streams.edge import Action, StreamElement


class TestConversionHelpers:
    def test_jaccard_from_common_basic(self):
        # |A| = 4, |B| = 6, common = 2 -> union = 8 -> J = 0.25
        assert jaccard_from_common(2, 4, 6) == pytest.approx(0.25)

    def test_jaccard_from_common_clamps_to_unit_interval(self):
        assert jaccard_from_common(100, 4, 6) == 1.0
        assert jaccard_from_common(-5, 4, 6) == 0.0

    def test_jaccard_of_two_empty_sets_is_one(self):
        assert jaccard_from_common(0, 0, 0) == 1.0

    def test_common_from_jaccard_inverts_jaccard_from_common(self):
        size_a, size_b, common = 30, 50, 10
        jaccard = jaccard_from_common(common, size_a, size_b)
        assert common_from_jaccard(jaccard, size_a, size_b) == pytest.approx(common)

    def test_common_from_jaccard_clamps(self):
        assert common_from_jaccard(0.0, 5, 5) == 0.0
        assert common_from_jaccard(1.0, 5, 9) <= 5.0

    def test_common_from_jaccard_negative_jaccard(self):
        assert common_from_jaccard(-0.3, 5, 5) == 0.0


class TestSimilaritySketchBase:
    def test_cardinality_counters_track_insert_and_delete(self):
        sketch = ExactSimilarityTracker()
        sketch.process(StreamElement(1, 10, Action.INSERT))
        sketch.process(StreamElement(1, 11, Action.INSERT))
        sketch.process(StreamElement(1, 10, Action.DELETE))
        assert sketch.cardinality(1) == 1

    def test_cardinality_unknown_user_raises(self):
        with pytest.raises(UnknownUserError):
            ExactSimilarityTracker().cardinality(99)

    def test_has_user_and_users(self):
        sketch = ExactSimilarityTracker()
        sketch.process(StreamElement(7, 1, Action.INSERT))
        assert sketch.has_user(7)
        assert not sketch.has_user(8)
        assert sketch.users() == {7}

    def test_process_stream_consumes_iterable(self, tiny_stream):
        sketch = ExactSimilarityTracker()
        sketch.process_stream(tiny_stream)
        assert sketch.users() == {1, 2, 3}

    def test_estimate_pair_returns_record(self, tiny_stream):
        sketch = ExactSimilarityTracker()
        sketch.process_stream(tiny_stream)
        estimate = sketch.estimate_pair(1, 2)
        assert isinstance(estimate, PairEstimate)
        assert estimate.user_a == 1
        assert estimate.user_b == 2
        assert estimate.common_items == 1.0

    def test_cardinality_never_negative(self):
        sketch = ExactSimilarityTracker()
        sketch.process(StreamElement(1, 10, Action.INSERT))
        sketch.process(StreamElement(1, 10, Action.DELETE))
        # A second (infeasible) delete fed directly to the sketch must not
        # drive the counter negative.
        sketch.process(StreamElement(1, 10, Action.DELETE))
        assert sketch.cardinality(1) == 0
