"""Tests for repro.similarity.engine."""

from __future__ import annotations

import pytest

from repro.baselines.base import PairEstimate
from repro.baselines.exact import ExactSimilarityTracker
from repro.core.memory import MemoryBudget
from repro.core.vos import VirtualOddSketch
from repro.exceptions import ConfigurationError
from repro.similarity.engine import SimilarityEngine, build_sketch, sketch_registry
from repro.streams.edge import Action, StreamElement


class TestSketchRegistry:
    def test_contains_paper_methods(self):
        assert {"MinHash", "OPH", "RP", "VOS", "Exact"} <= set(sketch_registry())

    def test_build_sketch_each_method(self):
        budget = MemoryBudget(baseline_registers=10, num_users=20)
        for name in sketch_registry():
            sketch = build_sketch(name, budget, seed=1)
            assert sketch.name == name or name == "Exact"

    def test_build_vos_gets_budget_translation(self):
        budget = MemoryBudget(baseline_registers=10, num_users=20)
        sketch = build_sketch("VOS", budget)
        assert isinstance(sketch, VirtualOddSketch)
        assert sketch.memory_bits() == budget.total_bits

    def test_unknown_sketch_raises(self):
        budget = MemoryBudget(baseline_registers=10, num_users=20)
        with pytest.raises(ConfigurationError):
            build_sketch("SimHash", budget)

    def test_baseline_memory_matches_budget(self):
        budget = MemoryBudget(baseline_registers=10, num_users=4)
        sketch = build_sketch("MinHash", budget)
        for user in range(4):
            sketch.process(StreamElement(user, 1 + user, Action.INSERT))
        assert sketch.memory_bits() == budget.total_bits


class TestSimilarityEngine:
    def test_requires_at_least_one_sketch(self):
        with pytest.raises(ConfigurationError):
            SimilarityEngine({})

    def test_default_construction(self):
        engine = SimilarityEngine.with_default_sketches(expected_users=10)
        assert set(engine.sketch_names) == {"VOS", "Exact"}

    def test_default_with_baselines(self):
        engine = SimilarityEngine.with_default_sketches(
            expected_users=10, include_baselines=True
        )
        assert set(engine.sketch_names) == {"VOS", "MinHash", "OPH", "RP", "Exact"}

    def test_process_feeds_every_sketch(self, tiny_stream):
        engine = SimilarityEngine.with_default_sketches(expected_users=5)
        engine.consume(tiny_stream)
        assert engine.elements_processed == len(tiny_stream)
        for name in engine.sketch_names:
            assert engine.sketch(name).has_user(1)

    def test_estimate_returns_pair_estimate(self, tiny_stream):
        engine = SimilarityEngine.with_default_sketches(expected_users=5)
        engine.consume(tiny_stream)
        estimate = engine.estimate(1, 2, method="Exact")
        assert isinstance(estimate, PairEstimate)
        assert estimate.common_items == 1.0

    def test_estimate_all_covers_every_sketch(self, tiny_stream):
        engine = SimilarityEngine.with_default_sketches(
            expected_users=5, include_baselines=True
        )
        engine.consume(tiny_stream)
        estimates = engine.estimate_all(1, 2)
        assert set(estimates) == set(engine.sketch_names)

    def test_unknown_sketch_name_raises(self, tiny_stream):
        engine = SimilarityEngine.with_default_sketches(expected_users=5)
        with pytest.raises(ConfigurationError):
            engine.sketch("NotASketch")

    def test_memory_report(self, tiny_stream):
        engine = SimilarityEngine.with_default_sketches(expected_users=5)
        engine.consume(tiny_stream)
        report = engine.memory_report()
        assert set(report) == {"VOS", "Exact"}
        assert all(bits >= 0 for bits in report.values())

    def test_engine_with_custom_sketches(self, tiny_stream):
        engine = SimilarityEngine({"Exact": ExactSimilarityTracker()})
        engine.consume(tiny_stream)
        assert engine.estimate(2, 3, method="Exact").jaccard == pytest.approx(1.0)

    def test_vos_and_exact_agree_on_synthetic_stream(self, insertion_only_stream):
        engine = SimilarityEngine.with_default_sketches(
            expected_users=len(insertion_only_stream.users()), baseline_registers=50
        )
        engine.consume(insertion_only_stream)
        exact = engine.sketch("Exact")
        vos = engine.sketch("VOS")
        users = sorted(exact.users(), key=exact.cardinality, reverse=True)[:6]
        for index, user_a in enumerate(users):
            for user_b in users[index + 1 :]:
                true_jaccard = exact.estimate_jaccard(user_a, user_b)
                assert vos.estimate_jaccard(user_a, user_b) == pytest.approx(
                    true_jaccard, abs=0.25
                )
