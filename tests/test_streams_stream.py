"""Tests for repro.streams.stream."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleStreamError
from repro.streams.edge import Action, StreamElement
from repro.streams.deletions import NoDeletionModel, UniformDeletionModel
from repro.streams.stream import GraphStream, build_dynamic_stream


class TestFeasibilityValidation:
    def test_duplicate_insertion_rejected(self):
        with pytest.raises(InfeasibleStreamError) as excinfo:
            GraphStream(
                [
                    StreamElement(1, 2, Action.INSERT),
                    StreamElement(1, 2, Action.INSERT),
                ]
            )
        assert excinfo.value.time == 2

    def test_deletion_of_absent_edge_rejected(self):
        with pytest.raises(InfeasibleStreamError):
            GraphStream([StreamElement(1, 2, Action.DELETE)])

    def test_reinsertion_after_deletion_allowed(self):
        stream = GraphStream(
            [
                StreamElement(1, 2, Action.INSERT),
                StreamElement(1, 2, Action.DELETE),
                StreamElement(1, 2, Action.INSERT),
            ]
        )
        assert len(stream) == 3

    def test_validation_can_be_disabled(self):
        stream = GraphStream(
            [StreamElement(1, 2, Action.DELETE)], validate=False
        )
        assert len(stream) == 1


class TestReplay:
    def test_item_sets_full_replay(self, tiny_stream):
        sets = tiny_stream.item_sets_at(None)
        assert sets[1] == {10, 12}
        assert sets[2] == {10}
        assert sets[3] == {10}

    def test_item_sets_prefix(self, tiny_stream):
        sets = tiny_stream.item_sets_at(2)
        assert sets[1] == {10, 11}
        assert 2 not in sets

    def test_item_sets_time_zero_is_empty(self, tiny_stream):
        assert tiny_stream.item_sets_at(0) == {}

    def test_users_and_items(self, tiny_stream):
        assert tiny_stream.users() == {1, 2, 3}
        assert tiny_stream.items() == {10, 11, 12}

    def test_statistics(self, tiny_stream):
        stats = tiny_stream.statistics()
        assert stats.length == 8
        assert stats.insertions == 6
        assert stats.deletions == 2
        assert stats.distinct_users == 3
        assert stats.distinct_items == 3
        assert stats.live_edges == 4
        assert stats.deletion_fraction == pytest.approx(0.25)


class TestTransformations:
    def test_prefix(self, tiny_stream):
        prefix = tiny_stream.prefix(3)
        assert len(prefix) == 3
        assert prefix[0] == tiny_stream[0]

    def test_insertions_only_drops_deletions(self, tiny_stream):
        insert_only = tiny_stream.insertions_only()
        assert all(element.is_insertion for element in insert_only)
        # deleted-then-reinserted edges appear only once
        assert len(insert_only) == 6

    def test_checkpoints_count_and_bounds(self, tiny_stream):
        points = tiny_stream.checkpoints(4)
        assert points[-1] == len(tiny_stream)
        assert all(1 <= p <= len(tiny_stream) for p in points)
        assert points == sorted(points)

    def test_checkpoints_zero_or_empty(self, tiny_stream):
        assert tiny_stream.checkpoints(0) == []
        assert GraphStream([]).checkpoints(3) == []


class TestBuildDynamicStream:
    def test_insertion_only_when_no_model(self):
        edges = [(1, 1), (1, 2), (2, 1)]
        stream = build_dynamic_stream(edges, None, name="s")
        assert len(stream) == 3
        assert all(element.is_insertion for element in stream)

    def test_duplicate_edges_skipped(self):
        stream = build_dynamic_stream([(1, 1), (1, 1), (1, 2)], None)
        assert len(stream) == 2

    def test_with_no_deletion_model_object(self):
        stream = build_dynamic_stream([(1, 1), (2, 2)], NoDeletionModel())
        assert stream.statistics().deletions == 0

    def test_resulting_stream_is_feasible(self):
        edges = [(u, i) for u in range(10) for i in range(20)]
        stream = build_dynamic_stream(
            edges, UniformDeletionModel(rate=0.5, seed=3), name="churn"
        )
        # Revalidating must not raise.
        GraphStream(stream.elements)

    def test_name_is_kept(self):
        assert build_dynamic_stream([(1, 1)], None, name="mystream").name == "mystream"

    def test_deleted_edge_is_reinserted(self):
        """Regression: a previously deleted edge must be re-inserted, while a
        raw duplicate of a live edge is skipped."""

        class DeleteFirstEdgeOnce:
            def __init__(self):
                self.fired = False

            def deletions_after_insertion(self, *, inserted, live_edges, time):
                if inserted == (1, 2) and not self.fired:
                    self.fired = True
                    return [(1, 1)]
                return []

        stream = build_dynamic_stream(
            [(1, 1), (1, 2), (1, 1), (1, 1)], DeleteFirstEdgeOnce()
        )
        assert [(e.user, e.item, e.action.symbol) for e in stream] == [
            (1, 1, "+"),
            (1, 2, "+"),
            (1, 1, "-"),
            (1, 1, "+"),  # re-insertion of the deleted edge is kept ...
            # ... and the final raw duplicate of the now-live edge is skipped.
        ]
        # Revalidating must not raise (feasibility).
        GraphStream(stream.elements)
        assert stream.item_sets_at(None)[1] == {1, 2}
