"""Tests for repro.service.service (the SimilarityService facade)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.service import ServiceConfig, SimilarityService
from repro.service.sharding import ShardedVOS
from repro.similarity.search import nearest_neighbours
from repro.streams.edge import Action, StreamElement


@pytest.fixture(autouse=True)
def _multicore(monkeypatch):
    """Pretend the host has cores so `workers > 1` exercises the threaded
    path instead of the single-core serial fallback."""
    monkeypatch.setattr("repro.service.parallel._cpu_count", lambda: 8)


@pytest.fixture(scope="module")
def fed_service(small_dynamic_stream):
    service = SimilarityService.from_config(
        ServiceConfig(expected_users=80, baseline_registers=16, num_shards=4, seed=6)
    )
    service.ingest(small_dynamic_stream.prefix(3000))
    return service


class TestConfiguration:
    def test_from_config_builds_sharded_sketch(self):
        service = SimilarityService.from_config(
            ServiceConfig(expected_users=50, num_shards=3)
        )
        assert isinstance(service.sketch, ShardedVOS)
        assert service.sketch.num_shards == 3
        assert service.sketch.memory_bits() >= ServiceConfig(expected_users=50).budget().total_bits

    def test_rejects_bad_batch_size(self):
        sketch = ShardedVOS(1, 64, 8)
        with pytest.raises(ConfigurationError):
            SimilarityService(sketch, batch_size=0)


class TestIngestAndQuery:
    def test_ingest_counts_elements(self, small_dynamic_stream):
        stream = small_dynamic_stream.prefix(1000)
        service = SimilarityService.from_config(
            ServiceConfig(expected_users=80, batch_size=128)
        )
        report = service.ingest(stream)
        assert report.elements == 1000
        assert report.batches == 8
        assert service.elements_ingested == 1000
        second = service.ingest(stream.prefix(100))
        assert second.elements == 100
        assert service.elements_ingested == 1100

    def test_estimate_matches_sketch(self, fed_service):
        users = sorted(fed_service.sketch.users())[:4]
        estimate = fed_service.estimate(users[0], users[1])
        assert estimate.jaccard == fed_service.sketch.estimate_jaccard(users[0], users[1])
        assert estimate.common_items == fed_service.sketch.estimate_common_items(
            users[0], users[1]
        )

    def test_top_k_reuses_search_module(self, fed_service):
        user = sorted(fed_service.sketch.users())[0]
        direct = nearest_neighbours(fed_service.sketch, user, k=5)
        via_service = fed_service.top_k(user, k=5)
        assert via_service == direct

    def test_top_k_pairs(self, fed_service):
        pairs = fed_service.top_k_pairs(k=3)
        assert len(pairs) == 3
        assert pairs[0].jaccard >= pairs[-1].jaccard

    def test_stats_fields(self, fed_service):
        stats = fed_service.stats()
        assert stats["users"] == len(fed_service.sketch.users())
        assert stats["num_shards"] == 4
        assert len(stats["shard_betas"]) == 4
        assert stats["memory_bits"] == fed_service.sketch.memory_bits()


class TestPersistence:
    def test_save_load_round_trip(self, fed_service, tmp_path):
        path = tmp_path / "service.snapshot"
        fed_service.save(path)
        restored = SimilarityService.load(path)
        users = sorted(fed_service.sketch.users())[:5]
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                assert fed_service.estimate(user_a, user_b) == restored.estimate(
                    user_a, user_b
                )
        assert restored.top_k(users[0], k=3) == fed_service.top_k(users[0], k=3)

    def test_restored_service_accepts_more_traffic(self, fed_service, tmp_path):
        path = tmp_path / "service.snapshot"
        fed_service.save(path)
        restored = SimilarityService.load(path)
        report = restored.ingest(
            [StreamElement(1, 50000 + i, Action.INSERT) for i in range(10)]
        )
        assert report.elements == 10
        assert restored.sketch.cardinality(1) >= 10


def test_load_accepts_workers(tmp_path):
    """Snapshot-restored services can keep ingesting in parallel."""
    from repro.service import ServiceConfig, SimilarityService
    from repro.streams import Action, StreamElement

    service = SimilarityService.from_config(
        ServiceConfig(expected_users=100, num_shards=4)
    )
    service.ingest(
        [StreamElement(u, i, Action.INSERT) for u in range(8) for i in range(10)]
    )
    path = tmp_path / "state.vos"
    service.save(path)
    restored = SimilarityService.load(path, workers=4)
    report = restored.ingest(
        [StreamElement(u, i, Action.INSERT) for u in range(8) for i in range(10, 20)]
    )
    assert report.workers == 4
    assert restored.stats()["workers"] == 4


class TestCheckpointPolicy:
    """every_n_elements / max_journal_bytes wiring through ServiceConfig."""

    def _service(self, tmp_path, **policy_kwargs):
        from repro.service import CheckpointPolicy, ServiceConfig, SimilarityService

        service = SimilarityService.from_config(
            ServiceConfig(
                expected_users=100,
                num_shards=2,
                seed=3,
                checkpoint=CheckpointPolicy(**policy_kwargs),
            )
        )
        service.ingest(
            [StreamElement(u, i, Action.INSERT) for u in range(10) for i in range(10)]
        )
        service.save(tmp_path / "state.vos")
        return service

    def test_policy_validation(self):
        from repro.exceptions import ConfigurationError
        from repro.service import CheckpointPolicy

        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_n_elements=-1)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(max_journal_bytes=-1)

    def test_every_n_elements_writes_deltas(self, tmp_path):
        from repro.service.journal import default_journal_path

        service = self._service(tmp_path, every_n_elements=50)
        assert service.stats()["persistence"]["deltas_written"] == 0
        service.ingest(
            [StreamElement(1, 10_000 + i, Action.INSERT) for i in range(60)]
        )
        stats = service.stats()["persistence"]
        assert stats["deltas_written"] >= 1
        assert stats["elements_since_checkpoint"] == 0
        assert default_journal_path(tmp_path / "state.vos").exists()
        # Below the threshold nothing new is written.
        service.ingest([StreamElement(1, 99_999, Action.INSERT)])
        assert service.stats()["persistence"]["deltas_written"] == stats["deltas_written"]

    def test_max_journal_bytes_triggers_compaction(self, tmp_path):
        from repro.service.journal import default_journal_path

        service = self._service(
            tmp_path, every_n_elements=10, max_journal_bytes=2000
        )
        for round_index in range(6):
            service.ingest(
                [
                    StreamElement(u, 10_000 + 100 * round_index + i, Action.INSERT)
                    for u in range(10)
                    for i in range(5)
                ]
            )
        stats = service.stats()["persistence"]
        assert stats["compactions"] >= 1
        # Compaction resets the journal file.
        assert not default_journal_path(tmp_path / "state.vos").exists() or (
            default_journal_path(tmp_path / "state.vos").stat().st_size < 2000
        )

    def test_policy_is_inert_without_a_bound_snapshot(self):
        from repro.service import CheckpointPolicy, ServiceConfig, SimilarityService

        service = SimilarityService.from_config(
            ServiceConfig(
                expected_users=50,
                checkpoint=CheckpointPolicy(every_n_elements=1),
            )
        )
        service.ingest([StreamElement(1, i, Action.INSERT) for i in range(10)])
        assert service.stats()["persistence"]["deltas_written"] == 0
        assert service.stats()["persistence"]["snapshot_path"] is None

    def test_save_delta_requires_binding(self):
        from repro.exceptions import ConfigurationError
        from repro.service import ServiceConfig, SimilarityService

        service = SimilarityService.from_config(ServiceConfig(expected_users=10))
        with pytest.raises(ConfigurationError, match="bound"):
            service.save_delta()

    def test_stats_reports_dirty_state(self, tmp_path):
        service = self._service(tmp_path)
        dirty = service.stats()["persistence"]["dirty"]
        assert dirty == {"dirty_words": 0, "dirty_counters": 0}
        service.ingest([StreamElement(1, 123456, Action.INSERT)])
        dirty = service.stats()["persistence"]["dirty"]
        assert dirty["dirty_counters"] == 1
        assert dirty["dirty_words"] >= 0

    def test_v1_loaded_service_upgrades_on_policy_trigger(self, tmp_path):
        """A v1 snapshot has no checkpoint id: the policy's first trigger
        writes a full v2 checkpoint instead of crashing in save_delta."""
        import json
        import struct

        from repro.service import CheckpointPolicy, ServiceConfig, SimilarityService
        from repro.service.snapshot import MAGIC, dumps_snapshot, snapshot_info

        service = SimilarityService.from_config(
            ServiceConfig(expected_users=20, num_shards=2, seed=1)
        )
        service.ingest([StreamElement(1, i, Action.INSERT) for i in range(10)])
        blob = dumps_snapshot(service.sketch)
        _, header_length = struct.unpack_from("<II", blob, len(MAGIC))
        start = len(MAGIC) + 8
        header = json.loads(blob[start : start + header_length])
        del header["checkpoint_id"]
        del header["extras"]
        for entry in header["sections"]:
            entry.pop("encoding", None)
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        path = tmp_path / "v1.vos"
        path.write_bytes(
            MAGIC
            + struct.pack("<II", 1, len(header_bytes))
            + header_bytes
            + blob[start + header_length :]
        )
        loaded = SimilarityService.load(
            path, checkpoint_policy=CheckpointPolicy(every_n_elements=5)
        )
        assert loaded.stats()["persistence"]["checkpoint_id"] is None
        loaded.ingest([StreamElement(2, i, Action.INSERT) for i in range(10)])
        # The trigger upgraded the file to v2 and bound a checkpoint id.
        assert snapshot_info(path)["format_version"] == 2
        assert loaded.stats()["persistence"]["checkpoint_id"] is not None

    def test_journal_bytes_reported_after_restart(self, tmp_path):
        from repro.service import SimilarityService

        service = self._service(tmp_path)
        service.ingest([StreamElement(1, 555555, Action.INSERT)])
        service.save_delta()
        journal_bytes = service.stats()["persistence"]["journal_bytes"]
        assert journal_bytes > 0
        restored = SimilarityService.load(tmp_path / "state.vos")
        assert restored.stats()["persistence"]["journal_bytes"] == journal_bytes
