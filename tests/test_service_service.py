"""Tests for repro.service.service (the SimilarityService facade)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.service import ServiceConfig, SimilarityService
from repro.service.sharding import ShardedVOS
from repro.similarity.search import nearest_neighbours
from repro.streams.edge import Action, StreamElement


@pytest.fixture(scope="module")
def fed_service(small_dynamic_stream):
    service = SimilarityService.from_config(
        ServiceConfig(expected_users=80, baseline_registers=16, num_shards=4, seed=6)
    )
    service.ingest(small_dynamic_stream.prefix(3000))
    return service


class TestConfiguration:
    def test_from_config_builds_sharded_sketch(self):
        service = SimilarityService.from_config(
            ServiceConfig(expected_users=50, num_shards=3)
        )
        assert isinstance(service.sketch, ShardedVOS)
        assert service.sketch.num_shards == 3
        assert service.sketch.memory_bits() >= ServiceConfig(expected_users=50).budget().total_bits

    def test_rejects_bad_batch_size(self):
        sketch = ShardedVOS(1, 64, 8)
        with pytest.raises(ConfigurationError):
            SimilarityService(sketch, batch_size=0)


class TestIngestAndQuery:
    def test_ingest_counts_elements(self, small_dynamic_stream):
        stream = small_dynamic_stream.prefix(1000)
        service = SimilarityService.from_config(
            ServiceConfig(expected_users=80, batch_size=128)
        )
        report = service.ingest(stream)
        assert report.elements == 1000
        assert report.batches == 8
        assert service.elements_ingested == 1000
        second = service.ingest(stream.prefix(100))
        assert second.elements == 100
        assert service.elements_ingested == 1100

    def test_estimate_matches_sketch(self, fed_service):
        users = sorted(fed_service.sketch.users())[:4]
        estimate = fed_service.estimate(users[0], users[1])
        assert estimate.jaccard == fed_service.sketch.estimate_jaccard(users[0], users[1])
        assert estimate.common_items == fed_service.sketch.estimate_common_items(
            users[0], users[1]
        )

    def test_top_k_reuses_search_module(self, fed_service):
        user = sorted(fed_service.sketch.users())[0]
        direct = nearest_neighbours(fed_service.sketch, user, k=5)
        via_service = fed_service.top_k(user, k=5)
        assert via_service == direct

    def test_top_k_pairs(self, fed_service):
        pairs = fed_service.top_k_pairs(k=3)
        assert len(pairs) == 3
        assert pairs[0].jaccard >= pairs[-1].jaccard

    def test_stats_fields(self, fed_service):
        stats = fed_service.stats()
        assert stats["users"] == len(fed_service.sketch.users())
        assert stats["num_shards"] == 4
        assert len(stats["shard_betas"]) == 4
        assert stats["memory_bits"] == fed_service.sketch.memory_bits()


class TestPersistence:
    def test_save_load_round_trip(self, fed_service, tmp_path):
        path = tmp_path / "service.snapshot"
        fed_service.save(path)
        restored = SimilarityService.load(path)
        users = sorted(fed_service.sketch.users())[:5]
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                assert fed_service.estimate(user_a, user_b) == restored.estimate(
                    user_a, user_b
                )
        assert restored.top_k(users[0], k=3) == fed_service.top_k(users[0], k=3)

    def test_restored_service_accepts_more_traffic(self, fed_service, tmp_path):
        path = tmp_path / "service.snapshot"
        fed_service.save(path)
        restored = SimilarityService.load(path)
        report = restored.ingest(
            [StreamElement(1, 50000 + i, Action.INSERT) for i in range(10)]
        )
        assert report.elements == 10
        assert restored.sketch.cardinality(1) >= 10


def test_load_accepts_workers(tmp_path):
    """Snapshot-restored services can keep ingesting in parallel."""
    from repro.service import ServiceConfig, SimilarityService
    from repro.streams import Action, StreamElement

    service = SimilarityService.from_config(
        ServiceConfig(expected_users=100, num_shards=4)
    )
    service.ingest(
        [StreamElement(u, i, Action.INSERT) for u in range(8) for i in range(10)]
    )
    path = tmp_path / "state.vos"
    service.save(path)
    restored = SimilarityService.load(path, workers=4)
    report = restored.ingest(
        [StreamElement(u, i, Action.INSERT) for u in range(8) for i in range(10, 20)]
    )
    assert report.workers == 4
    assert restored.stats()["workers"] == 4
