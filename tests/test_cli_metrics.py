"""Tests for the ``repro metrics`` CLI and the ``--log-level`` flag.

``metrics dump`` must exercise all four instrumented subsystems in one
process (snapshot load → optional ingest → LSH query) and emit a machine-
readable registry dump; ``show`` renders the same data as a table; ``reset``
zeroes the process registry.
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.service import ServiceConfig, SimilarityService
from repro.streams.edge import Action, StreamElement
from repro.streams.io import write_stream
from repro.streams.stream import GraphStream


@pytest.fixture
def registry():
    previous = get_registry()
    fresh = set_registry(MetricsRegistry())
    yield fresh
    set_registry(previous)


@pytest.fixture(autouse=True)
def restore_logging():
    """main() reconfigures root logging (force=True); undo it after each test."""
    root = logging.getLogger()
    level, handlers = root.level, list(root.handlers)
    yield
    root.setLevel(level)
    root.handlers[:] = handlers


def correlated_elements(users=20, items=40, overlap=0.6, seed=3):
    rng = np.random.default_rng(seed)
    shared = [int(x) for x in rng.integers(0, 10**6, size=items)]
    elements = []
    for user in range(users):
        for item in shared:
            if rng.random() < overlap:
                elements.append(StreamElement(user, item, Action.INSERT))
    return elements


@pytest.fixture
def snapshot_path(tmp_path, registry):
    service = SimilarityService.from_config(
        ServiceConfig(expected_users=64, num_shards=4, seed=9)
    )
    service.ingest(correlated_elements())
    path = tmp_path / "state.vos"
    service.save(path=path)
    service.ingest([StreamElement(1, 5_000_001, Action.INSERT)])
    service.save_delta()
    registry.reset()  # the CLI run must repopulate everything itself
    return path


class TestMetricsDump:
    def test_dump_covers_all_four_subsystems(self, registry, snapshot_path, capsys):
        assert main(["metrics", "dump", "--snapshot", str(snapshot_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = (
            set(payload["counters"])
            | set(payload["gauges"])
            | set(payload["histograms"])
        )
        for prefix in ("ingest.", "query.", "index.", "persistence."):
            assert any(name.startswith(prefix) for name in names), (
                f"dump missing subsystem {prefix!r}"
            )
        # Latency histograms carry percentile fields.
        query = payload["histograms"]["query.top_k_pairs"]
        assert query["count"] >= 1
        assert query["p50"] is not None and query["p99"] is not None
        replay = payload["histograms"]["persistence.journal.replay"]
        assert replay["count"] == 1

    def test_dump_with_stream_ingests_first(
        self, registry, snapshot_path, tmp_path, capsys
    ):
        stream_path = tmp_path / "extra.txt"
        write_stream(
            GraphStream(
                [StreamElement(50, 123, Action.INSERT)], name="extra", validate=False
            ),
            stream_path,
        )
        code = main(
            [
                "metrics",
                "dump",
                "--snapshot",
                str(snapshot_path),
                "--stream",
                str(stream_path),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["ingest.elements"]["value"] == 1

    def test_dump_prometheus_format(self, registry, snapshot_path, capsys):
        code = main(
            [
                "metrics",
                "dump",
                "--snapshot",
                str(snapshot_path),
                "--format",
                "prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_persistence_snapshot_loads counter" in out
        assert "repro_persistence_snapshot_loads 1" in out
        assert 'quantile="0.99"' in out

    def test_dump_writes_out_file(self, registry, snapshot_path, tmp_path, capsys):
        out_path = tmp_path / "metrics.json"
        code = main(
            [
                "metrics",
                "dump",
                "--snapshot",
                str(snapshot_path),
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["counters"]["persistence.snapshot.loads"]["value"] == 1

    def test_dump_missing_snapshot_is_an_error(self, registry, tmp_path, capsys):
        code = main(["metrics", "dump", "--snapshot", str(tmp_path / "nope.vos")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMetricsShowAndReset:
    def test_show_renders_table(self, registry, snapshot_path, capsys):
        assert main(["metrics", "show", "--snapshot", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "histogram" in out and "counter" in out
        assert "p99" in out and "unit" in out
        assert "persistence.snapshot.load" in out

    def test_show_csv(self, registry, snapshot_path, capsys):
        code = main(["metrics", "show", "--snapshot", str(snapshot_path), "--csv"])
        assert code == 0
        assert "metric,kind," in capsys.readouterr().out

    def test_reset_zeroes_registry(self, registry, snapshot_path, capsys):
        main(["metrics", "dump", "--snapshot", str(snapshot_path)])
        capsys.readouterr()
        assert registry.counter("persistence.snapshot.loads").value == 1
        assert main(["metrics", "reset"]) == 0
        assert registry.counter("persistence.snapshot.loads").value == 0


class TestLogLevel:
    def test_default_log_level_is_warning(self, registry, snapshot_path, capsys):
        main(["metrics", "reset"])
        assert logging.getLogger().level == logging.WARNING

    # configure_logging(force=True) swaps the root handlers, so these tests
    # read the captured stderr stream rather than going through caplog.

    def test_log_level_info_emits_persistence_events(
        self, registry, snapshot_path, capsys
    ):
        main(
            ["--log-level", "info", "metrics", "dump", "--snapshot", str(snapshot_path)]
        )
        err = capsys.readouterr().err
        assert "snapshot restore" in err
        assert "journal replay done" in err
        assert "last_seq=" in err  # journal sequence number in log context

    def test_log_level_debug_includes_shard_context(
        self, registry, snapshot_path, capsys
    ):
        main(
            ["--log-level", "debug", "metrics", "dump", "--snapshot", str(snapshot_path)]
        )
        err = capsys.readouterr().err
        replay_lines = [
            line for line in err.splitlines() if "journal replay record" in line
        ]
        assert replay_lines
        assert "shard=" in replay_lines[0]
        assert "seq=" in replay_lines[0]

    def test_invalid_log_level_rejected(self, registry):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud", "metrics", "reset"])
