"""Tests for repro.hashing.families."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.hashing.families import HashFamily, IndexedHash


class TestHashFamily:
    def test_length_and_indexing(self):
        family = HashFamily(size=8, range_size=32, seed=1)
        assert len(family) == 8
        assert isinstance(family[0], IndexedHash)
        assert family[7].index == 7

    def test_members_are_distinct_functions(self):
        family = HashFamily(size=10, range_size=10_000, seed=4)
        outputs = [member("same-key") for member in family]
        assert len(set(outputs)) > 5  # overwhelmingly likely for independent hashes

    def test_deterministic_across_instances(self):
        family_a = HashFamily(size=5, range_size=100, seed=2)
        family_b = HashFamily(size=5, range_size=100, seed=2)
        assert family_a.apply_all("user") == family_b.apply_all("user")

    def test_different_master_seeds_differ(self):
        family_a = HashFamily(size=5, range_size=10_000, seed=1)
        family_b = HashFamily(size=5, range_size=10_000, seed=2)
        assert family_a.apply_all("user") != family_b.apply_all("user")

    def test_apply_all_range(self):
        family = HashFamily(size=6, range_size=17, seed=3)
        for key in ["a", "b", 12, ("x", 1)]:
            assert all(0 <= v < 17 for v in family.apply_all(key))

    def test_iteration_preserves_order(self):
        family = HashFamily(size=4, range_size=8, seed=0)
        assert [member.index for member in family] == [0, 1, 2, 3]

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            HashFamily(size=0, range_size=8)
        with pytest.raises(ConfigurationError):
            HashFamily(size=3, range_size=0)

    def test_min_index_in_bounds(self):
        family = HashFamily(size=9, range_size=100, seed=5)
        assert 0 <= family.min_index("key") < 9

    def test_indexed_hash_exposes_range_and_variants(self):
        family = HashFamily(size=2, range_size=50, seed=6)
        member = family[1]
        assert member.range_size == 50
        assert 0 <= member("k") < 50
        assert member.value64("k") >= 0
        assert 0.0 <= member.unit_interval("k") < 1.0
