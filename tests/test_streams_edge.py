"""Tests for repro.streams.edge."""

from __future__ import annotations

import pytest

from repro.streams.edge import Action, StreamElement


class TestAction:
    def test_symbols(self):
        assert Action.INSERT.symbol == "+"
        assert Action.DELETE.symbol == "-"

    def test_signs(self):
        assert Action.INSERT.sign == 1
        assert Action.DELETE.sign == -1

    @pytest.mark.parametrize(
        "token,expected",
        [
            ("+", Action.INSERT),
            ("-", Action.DELETE),
            ("insert", Action.INSERT),
            ("delete", Action.DELETE),
            ("Subscribe", Action.INSERT),
            ("UNSUBSCRIBE", Action.DELETE),
            ("  + ", Action.INSERT),
        ],
    )
    def test_from_symbol(self, token, expected):
        assert Action.from_symbol(token) is expected

    def test_from_symbol_rejects_unknown(self):
        with pytest.raises(ValueError):
            Action.from_symbol("?")


class TestStreamElement:
    def test_defaults_to_insertion(self):
        element = StreamElement(1, 2)
        assert element.is_insertion
        assert not element.is_deletion

    def test_edge_property(self):
        assert StreamElement(3, 9, Action.DELETE).edge == (3, 9)

    def test_inverted_flips_action(self):
        element = StreamElement(1, 2, Action.INSERT)
        assert element.inverted().action is Action.DELETE
        assert element.inverted().inverted() == element

    def test_str_contains_symbol(self):
        assert "+" in str(StreamElement(1, 2, Action.INSERT))
        assert "-" in str(StreamElement(1, 2, Action.DELETE))

    def test_frozen(self):
        element = StreamElement(1, 2)
        with pytest.raises(Exception):
            element.user = 5  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert StreamElement(1, 2) == StreamElement(1, 2, Action.INSERT)
        assert len({StreamElement(1, 2), StreamElement(1, 2)}) == 1
        assert StreamElement(1, 2) != StreamElement(1, 2, Action.DELETE)
