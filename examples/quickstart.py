"""Quickstart: estimate user similarities over a fully dynamic graph stream.

This example walks through the library's main objects:

1. load (or generate) a fully dynamic bipartite graph stream — users
   subscribing to and unsubscribing from items over time;
2. feed it into a :class:`~repro.similarity.engine.SimilarityEngine` holding a
   VOS sketch, the three baselines from the paper, and an exact tracker;
3. query the number of common items and the Jaccard coefficient for the most
   interesting user pairs and compare every method against the exact answer.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimilarityEngine, load_dataset
from repro.evaluation.reporting import render_table
from repro.similarity.pairs import select_evaluation_pairs


def main() -> None:
    # 1. A synthetic stand-in for the paper's YouTube crawl: a power-law
    #    bipartite graph streamed as insertions with Trièst-style massive
    #    deletions (50% of live edges wiped periodically).
    stream = load_dataset("youtube", scale=0.5)
    statistics = stream.statistics()
    print(f"stream '{stream.name}': {statistics.length} elements "
          f"({statistics.insertions} insertions, {statistics.deletions} deletions), "
          f"{statistics.distinct_users} users, {statistics.distinct_items} items")

    # 2. Build the engine.  The memory budget follows the paper: every baseline
    #    gets k 32-bit registers per user, and VOS gets the same total bits for
    #    its shared array (with a virtual sketch of 2 * 32 * k bits per user).
    engine = SimilarityEngine.with_default_sketches(
        expected_users=statistics.distinct_users,
        baseline_registers=24,
        include_baselines=True,
    )
    engine.consume(stream)
    print(f"processed {engine.elements_processed} stream elements")
    print("memory accounted per sketch (bits):", engine.memory_report())

    # 3. Pick the pairs the paper's evaluation would track: the largest users
    #    that share at least one item, then compare every method's estimates.
    item_sets = stream.insertions_only().item_sets_at(None)
    pairs = select_evaluation_pairs(item_sets, top_users=20, max_pairs=5)

    rows = []
    for user_a, user_b in pairs:
        estimates = engine.estimate_all(user_a, user_b)
        exact = estimates["Exact"]
        rows.append(
            [
                f"({user_a}, {user_b})",
                f"{exact.common_items:.0f} / {exact.jaccard:.3f}",
                f"{estimates['VOS'].common_items:.1f} / {estimates['VOS'].jaccard:.3f}",
                f"{estimates['MinHash'].common_items:.1f} / {estimates['MinHash'].jaccard:.3f}",
                f"{estimates['OPH'].common_items:.1f} / {estimates['OPH'].jaccard:.3f}",
                f"{estimates['RP'].common_items:.1f} / {estimates['RP'].jaccard:.3f}",
            ]
        )
    print()
    print("common items / Jaccard for the top tracked pairs")
    print(render_table(["pair", "exact", "VOS", "MinHash", "OPH", "RP"], rows))


if __name__ == "__main__":
    main()
