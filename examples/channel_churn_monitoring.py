"""Monitoring audience similarity between channels as subscriptions churn.

A platform operator wants to watch, in near real time, how similar the
audiences of competing channels are — e.g. to detect when two channels start
serving the same community or when a massive unsubscription wave decouples
them.  The item sets change constantly (subscribe and unsubscribe events), so
this is exactly the fully dynamic setting of the paper.

The example:

1. builds a stream in which two "channels" (modelled as users of the bipartite
   graph; the graph is symmetric in that respect) start with different
   audiences, gradually converge as they gain common subscribers, and then
   diverge again after a churn wave;
2. tracks their common-subscriber count and Jaccard similarity continuously
   with a VOS sketch, comparing against the exact values at every checkpoint;
3. prints the timeline, demonstrating that the sketch follows both the upward
   and the downward (deletion-driven) trend — the regime where MinHash/OPH
   style sketches drift because of their sampling bias.

Run with::

    python examples/channel_churn_monitoring.py
"""

from __future__ import annotations

import random

from repro import VirtualOddSketch
from repro.baselines.exact import ExactSimilarityTracker
from repro.baselines.minhash import DynamicMinHash
from repro.core.memory import MemoryBudget
from repro.evaluation.reporting import render_table
from repro.streams import Action, StreamElement

CHANNEL_A = 0
CHANNEL_B = 1
PHASE_LENGTH = 400


def build_churn_scenario(seed: int = 11):
    """Three phases: disjoint growth, convergence, churn-driven divergence."""
    rng = random.Random(seed)
    elements: list[StreamElement] = []
    # Phase 1: each channel gains its own audience.
    for subscriber in range(PHASE_LENGTH):
        elements.append(StreamElement(CHANNEL_A, subscriber, Action.INSERT))
        elements.append(StreamElement(CHANNEL_B, 10_000 + subscriber, Action.INSERT))
    # Phase 2: a shared audience subscribes to both channels.
    for subscriber in range(20_000, 20_000 + PHASE_LENGTH):
        elements.append(StreamElement(CHANNEL_A, subscriber, Action.INSERT))
        elements.append(StreamElement(CHANNEL_B, subscriber, Action.INSERT))
    # Phase 3: a churn wave — most of the shared audience unsubscribes from
    # channel B, while channel B picks up fresh exclusive subscribers.
    for subscriber in range(20_000, 20_000 + PHASE_LENGTH):
        if rng.random() < 0.8:
            elements.append(StreamElement(CHANNEL_B, subscriber, Action.DELETE))
        elements.append(StreamElement(CHANNEL_B, 30_000 + subscriber, Action.INSERT))
    return elements


def main() -> None:
    elements = build_churn_scenario()
    budget = MemoryBudget(baseline_registers=24, num_users=16)
    vos = VirtualOddSketch.from_budget(budget, seed=2)
    minhash = DynamicMinHash(24, seed=2)
    exact = ExactSimilarityTracker()

    checkpoints = {len(elements) * fraction // 12 for fraction in range(1, 13)}
    rows = []
    for position, element in enumerate(elements, start=1):
        vos.process(element)
        minhash.process(element)
        exact.process(element)
        if position in checkpoints:
            rows.append(
                [
                    position,
                    f"{exact.estimate_common_items(CHANNEL_A, CHANNEL_B):.0f}",
                    f"{vos.estimate_common_items(CHANNEL_A, CHANNEL_B):.1f}",
                    f"{exact.estimate_jaccard(CHANNEL_A, CHANNEL_B):.3f}",
                    f"{vos.estimate_jaccard(CHANNEL_A, CHANNEL_B):.3f}",
                    f"{minhash.estimate_jaccard(CHANNEL_A, CHANNEL_B):.3f}",
                ]
            )
    print("audience similarity between two channels over a churn scenario")
    print(
        render_table(
            ["t", "common (exact)", "common (VOS)", "J (exact)", "J (VOS)", "J (MinHash)"],
            rows,
        )
    )
    print()
    print("phases: 1) disjoint growth  2) shared audience joins  3) churn wave hits channel B")
    print("note how the MinHash column drifts after the churn wave (sampling bias under")
    print("deletions) while VOS tracks the exact Jaccard in both directions.")


if __name__ == "__main__":
    main()
