"""Item recommendation from sketched user-user similarities (collaborative filtering).

Motivation (paper introduction): user-user collaborative filtering needs the
similarity between a target user and every other user to find neighbours whose
subscriptions can be recommended.  Over a fully dynamic stream the exact item
sets are expensive to keep hot, but a VOS sketch answers the neighbour search
approximately with a fraction of the memory.

The example:

1. streams a synthetic subscription graph (with unsubscriptions) through a VOS
   sketch and an exact tracker;
2. for a few target users, finds the top-N most similar neighbours with the
   sketch and recommends the items those neighbours subscribe to that the
   target does not;
3. scores the sketched recommendations against recommendations computed from
   exact similarities (overlap@K), showing the sketch preserves the ranking
   signal that matters for recommendation.

Run with::

    python examples/collaborative_filtering.py
"""

from __future__ import annotations

from collections import Counter

from repro import VirtualOddSketch, load_dataset
from repro.baselines.exact import ExactSimilarityTracker
from repro.core.memory import MemoryBudget
from repro.evaluation.reporting import render_table

NUM_NEIGHBOURS = 8
NUM_RECOMMENDATIONS = 10
NUM_TARGET_USERS = 5


def recommend(target, neighbours, item_sets):
    """Recommend items subscribed by the neighbours but not by the target."""
    already = item_sets.get(target, set())
    votes: Counter = Counter()
    for neighbour, weight in neighbours:
        for item in item_sets.get(neighbour, set()):
            if item not in already:
                votes[item] += weight
    return [item for item, _ in votes.most_common(NUM_RECOMMENDATIONS)]


def neighbours_by(score_function, target, candidates):
    """Top-N candidate users ranked by a similarity scoring function."""
    scored = [
        (score_function(target, other), other) for other in candidates if other != target
    ]
    scored.sort(reverse=True)
    return [(user, max(score, 0.0)) for score, user in scored[:NUM_NEIGHBOURS]]


def main() -> None:
    stream = load_dataset("flickr", scale=0.5)
    users = stream.users()

    budget = MemoryBudget(baseline_registers=24, num_users=len(users))
    vos = VirtualOddSketch.from_budget(budget, seed=5)
    exact = ExactSimilarityTracker()
    for element in stream:
        vos.process(element)
        exact.process(element)

    item_sets = {user: exact.item_set(user) for user in users}
    # Targets: mid-sized accounts (large enough to have taste, small enough to
    # want recommendations); candidates: the largest accounts.
    by_size = sorted(users, key=lambda u: len(item_sets[u]), reverse=True)
    candidates = by_size[:60]
    targets = by_size[10 : 10 + NUM_TARGET_USERS]

    rows = []
    for target in targets:
        sketched_neighbours = neighbours_by(vos.estimate_jaccard, target, candidates)
        exact_neighbours = neighbours_by(exact.estimate_jaccard, target, candidates)
        sketched_recs = set(recommend(target, sketched_neighbours, item_sets))
        exact_recs = set(recommend(target, exact_neighbours, item_sets))
        overlap = len(sketched_recs & exact_recs)
        denominator = max(1, min(len(sketched_recs), len(exact_recs)))
        rows.append(
            [
                target,
                len(item_sets[target]),
                ", ".join(str(u) for u, _ in sketched_neighbours[:4]),
                len(sketched_recs),
                f"{overlap}/{denominator}",
            ]
        )
    print("user-user collaborative filtering from VOS-sketched similarities")
    print(
        render_table(
            ["target", "|items|", "top sketched neighbours", "#recs", "overlap with exact recs"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
