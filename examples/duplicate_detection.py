"""Near-duplicate account detection over a subscription stream.

Motivation (from the paper's introduction): similarity estimation over graph
streams powers duplicate detection — accounts that subscribe to nearly the
same set of channels are likely duplicates, bots, or sock puppets.  Scanning
all item sets exactly is too expensive when the stream is large and fully
dynamic, so we use the VOS sketch to screen candidate pairs cheaply and verify
only the screened pairs exactly.

The example:

1. generates a subscription stream and injects a few "duplicate" accounts that
   copy an existing user's subscriptions with small perturbations, including
   some unsubscriptions (so the static-sketch baselines are at a disadvantage);
2. feeds the stream through a VOS sketch;
3. ranks candidate pairs by the sketch's Jaccard estimate and reports
   precision against the known ground-truth duplicates.

Run with::

    python examples/duplicate_detection.py
"""

from __future__ import annotations

import random
from itertools import combinations

from repro import VirtualOddSketch
from repro.baselines.exact import ExactSimilarityTracker
from repro.core.memory import MemoryBudget
from repro.evaluation.reporting import render_table
from repro.streams import Action, StreamElement, load_dataset

NUM_DUPLICATES = 6
PERTURBATION = 0.15  # fraction of the cloned subscriptions that are changed


def build_stream_with_duplicates(seed: int = 7):
    """Append duplicate accounts (with churn) to a synthetic subscription stream."""
    rng = random.Random(seed)
    base = load_dataset("youtube", scale=0.4)
    elements = list(base)
    item_sets = base.item_sets_at(None)
    # Clone the largest accounts into fresh user ids.
    originals = sorted(item_sets, key=lambda u: len(item_sets[u]), reverse=True)[:NUM_DUPLICATES]
    next_user = max(base.users()) + 1
    duplicates = {}
    for original in originals:
        clone = next_user
        next_user += 1
        duplicates[clone] = original
        items = sorted(item_sets[original])
        for item in items:
            elements.append(StreamElement(clone, item, Action.INSERT))
        # Perturb: unsubscribe a few cloned items and subscribe a few others.
        for item in items:
            if rng.random() < PERTURBATION:
                elements.append(StreamElement(clone, item, Action.DELETE))
        for _ in range(int(len(items) * PERTURBATION)):
            elements.append(StreamElement(clone, 10_000 + rng.randrange(500), Action.INSERT))
    return elements, duplicates


def main() -> None:
    elements, duplicates = build_stream_with_duplicates()
    users = {element.user for element in elements}

    budget = MemoryBudget(baseline_registers=24, num_users=len(users))
    vos = VirtualOddSketch.from_budget(budget, seed=3)
    exact = ExactSimilarityTracker()
    for element in elements:
        vos.process(element)
        exact.process(element)

    # Screen: consider pairs among the largest accounts only (as the paper's
    # evaluation does) and rank them by the sketched Jaccard estimate.
    largest = sorted(users, key=lambda u: exact.cardinality(u), reverse=True)[:40]
    scored = []
    for user_a, user_b in combinations(sorted(largest), 2):
        scored.append((vos.estimate_jaccard(user_a, user_b), user_a, user_b))
    scored.sort(reverse=True)

    truth_pairs = {tuple(sorted((clone, original))) for clone, original in duplicates.items()}
    rows = []
    hits = 0
    for rank, (score, user_a, user_b) in enumerate(scored[: len(truth_pairs) + 4], start=1):
        is_duplicate = tuple(sorted((user_a, user_b))) in truth_pairs
        hits += int(is_duplicate)
        rows.append(
            [
                rank,
                f"({user_a}, {user_b})",
                f"{score:.3f}",
                f"{exact.estimate_jaccard(user_a, user_b):.3f}",
                "yes" if is_duplicate else "",
            ]
        )
    print("top sketched pairs (screening for duplicate accounts)")
    print(render_table(["rank", "pair", "VOS Jaccard", "exact Jaccard", "planted duplicate"], rows))
    print()
    print(f"planted duplicate pairs: {len(truth_pairs)}; "
          f"recovered in the top {len(rows)} screened pairs: {hits}")


if __name__ == "__main__":
    main()
