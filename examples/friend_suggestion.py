"""Friend suggestion on a regular (non-bipartite) dynamic social graph.

The paper notes its method "can be easily extended to regular graphs": in a
friendship graph a node's "item set" is simply its neighbour set, so the same
sketch estimates how many friends two people share — the classic
"people you may know" signal — while friendships are created and broken over
time.

The example:

1. builds a dynamic friendship graph of several loosely connected communities
   with ongoing churn (friendships forming and dissolving);
2. maintains a VOS sketch and an exact tracker through the
   :class:`~repro.streams.regular.RegularGraphSimilarity` facade;
3. for a few target people, prints the top friend suggestions ranked by the
   sketched number of common friends, next to the exact values.

Run with::

    python examples/friend_suggestion.py

The same workload can run against a live serving daemon instead of an
in-process sketch: start one (``repro serve --snapshot state.vos``), then
point the example at it — friendship events stream in over
``ingest_batch`` requests (one epoch swap at the end) and the suggestion
scores come back through ``estimate_many``::

    python examples/friend_suggestion.py --connect 127.0.0.1:7437
"""

from __future__ import annotations

import random
import sys

from repro import VirtualOddSketch
from repro.baselines.exact import ExactSimilarityTracker
from repro.core.memory import MemoryBudget
from repro.evaluation.reporting import render_table
from repro.streams.regular import RegularGraphSimilarity

NUM_COMMUNITIES = 4
COMMUNITY_SIZE = 60
INTRA_PROBABILITY = 0.55
INTER_PROBABILITY = 0.01
CHURN_ROUNDS = 2
NUM_SUGGESTIONS = 5


def build_friendship_events(seed: int = 13):
    """Yield (a, b, insert?) friendship events for a churning community graph."""
    rng = random.Random(seed)
    people = list(range(NUM_COMMUNITIES * COMMUNITY_SIZE))
    community_of = {person: person // COMMUNITY_SIZE for person in people}
    events: list[tuple[int, int, bool]] = []
    live: set[tuple[int, int]] = set()
    for a in people:
        for b in people:
            if a >= b:
                continue
            probability = (
                INTRA_PROBABILITY if community_of[a] == community_of[b] else INTER_PROBABILITY
            )
            if rng.random() < probability:
                events.append((a, b, True))
                live.add((a, b))
    # Churn: repeatedly dissolve a slice of existing friendships and form new ones.
    for _ in range(CHURN_ROUNDS):
        for edge in sorted(live):
            if rng.random() < 0.2:
                events.append((edge[0], edge[1], False))
                live.discard(edge)
        for a in people:
            b = rng.choice(people)
            if a == b:
                continue
            key = (min(a, b), max(a, b))
            if key not in live:
                events.append((key[0], key[1], True))
                live.add(key)
    return events


def _ingest_remote(connect: str, events) -> "object":
    """Stream friendship events into a serving daemon; returns the client.

    A regular-graph edge ``(a, b)`` is two bipartite elements — person ``a``
    gains neighbour ``b`` and vice versa — exactly what
    :class:`~repro.streams.regular.RegularGraphSimilarity` does in process.
    Batches ride over ``ingest_batch`` with ``publish=False`` so readers see
    one epoch swap at the end instead of one per batch.
    """
    from repro.cli import _parse_connect
    from repro.server import ServingClient
    from repro.streams import Action, StreamElement

    client = ServingClient(*_parse_connect(connect))
    elements = []
    for a, b, is_insert in events:
        action = Action.INSERT if is_insert else Action.DELETE
        elements.append(StreamElement(a, b, action))
        elements.append(StreamElement(b, a, action))
    batch_size = 8192
    for start in range(0, len(elements), batch_size):
        batch = elements[start : start + batch_size]
        last = start + batch_size >= len(elements)
        report = client.ingest_batch(batch, publish=last)
    print(
        f"streamed {len(elements)} elements into {connect} "
        f"(daemon epoch {report['epoch']}, repro {client.server_version})"
    )
    return client


def main(argv=()) -> None:
    connect = None
    arguments = list(argv)
    if "--connect" in arguments:
        connect = arguments[arguments.index("--connect") + 1]
    events = build_friendship_events()
    num_people = NUM_COMMUNITIES * COMMUNITY_SIZE

    client = None
    sketched = None
    if connect is None:
        budget = MemoryBudget(baseline_registers=24, num_users=num_people)
        sketched = RegularGraphSimilarity(VirtualOddSketch.from_budget(budget, seed=4))
    else:
        client = _ingest_remote(connect, events)
    exact = RegularGraphSimilarity(ExactSimilarityTracker())
    for a, b, is_insert in events:
        if is_insert:
            if sketched is not None:
                sketched.add_edge(a, b)
            exact.add_edge(a, b)
        else:
            if sketched is not None:
                sketched.remove_edge(a, b)
            exact.remove_edge(a, b)
    print(f"friendship graph: {num_people} people, {exact.live_edge_count} live friendships "
          f"after {len(events)} events")

    targets = [0, COMMUNITY_SIZE, 2 * COMMUNITY_SIZE]
    for target in targets:
        friends = exact.sketch.item_set(target)
        candidates = [
            person
            for person in range(num_people)
            if person != target and person not in friends
        ]
        if client is not None:
            estimates = client.estimate_many(
                [(target, person) for person in candidates]
            )
            scored = [
                (estimate.common_items, person)
                for estimate, person in zip(estimates, candidates)
            ]
        else:
            scored = [
                (sketched.estimate_common_neighbours(target, person), person)
                for person in candidates
            ]
        scored.sort(reverse=True)
        rows = []
        for score, person in scored[:NUM_SUGGESTIONS]:
            rows.append(
                [
                    person,
                    f"{score:.1f}",
                    f"{exact.estimate_common_neighbours(target, person):.0f}",
                    "same" if person // COMMUNITY_SIZE == target // COMMUNITY_SIZE else "other",
                ]
            )
        print()
        print(f"friend suggestions for person {target} "
              f"(community {target // COMMUNITY_SIZE}, {exact.degree(target)} friends)")
        print(render_table(
            ["suggested person", "common friends (VOS)", "common friends (exact)", "community"],
            rows,
        ))
    if client is not None:
        client.close()


if __name__ == "__main__":
    main(sys.argv[1:])
