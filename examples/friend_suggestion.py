"""Friend suggestion on a regular (non-bipartite) dynamic social graph.

The paper notes its method "can be easily extended to regular graphs": in a
friendship graph a node's "item set" is simply its neighbour set, so the same
sketch estimates how many friends two people share — the classic
"people you may know" signal — while friendships are created and broken over
time.

The example:

1. builds a dynamic friendship graph of several loosely connected communities
   with ongoing churn (friendships forming and dissolving);
2. maintains a VOS sketch and an exact tracker through the
   :class:`~repro.streams.regular.RegularGraphSimilarity` facade;
3. for a few target people, prints the top friend suggestions ranked by the
   sketched number of common friends, next to the exact values.

Run with::

    python examples/friend_suggestion.py
"""

from __future__ import annotations

import random

from repro import VirtualOddSketch
from repro.baselines.exact import ExactSimilarityTracker
from repro.core.memory import MemoryBudget
from repro.evaluation.reporting import render_table
from repro.streams.regular import RegularGraphSimilarity

NUM_COMMUNITIES = 4
COMMUNITY_SIZE = 60
INTRA_PROBABILITY = 0.55
INTER_PROBABILITY = 0.01
CHURN_ROUNDS = 2
NUM_SUGGESTIONS = 5


def build_friendship_events(seed: int = 13):
    """Yield (a, b, insert?) friendship events for a churning community graph."""
    rng = random.Random(seed)
    people = list(range(NUM_COMMUNITIES * COMMUNITY_SIZE))
    community_of = {person: person // COMMUNITY_SIZE for person in people}
    events: list[tuple[int, int, bool]] = []
    live: set[tuple[int, int]] = set()
    for a in people:
        for b in people:
            if a >= b:
                continue
            probability = (
                INTRA_PROBABILITY if community_of[a] == community_of[b] else INTER_PROBABILITY
            )
            if rng.random() < probability:
                events.append((a, b, True))
                live.add((a, b))
    # Churn: repeatedly dissolve a slice of existing friendships and form new ones.
    for _ in range(CHURN_ROUNDS):
        for edge in sorted(live):
            if rng.random() < 0.2:
                events.append((edge[0], edge[1], False))
                live.discard(edge)
        for a in people:
            b = rng.choice(people)
            if a == b:
                continue
            key = (min(a, b), max(a, b))
            if key not in live:
                events.append((key[0], key[1], True))
                live.add(key)
    return events


def main() -> None:
    events = build_friendship_events()
    num_people = NUM_COMMUNITIES * COMMUNITY_SIZE

    budget = MemoryBudget(baseline_registers=24, num_users=num_people)
    sketched = RegularGraphSimilarity(VirtualOddSketch.from_budget(budget, seed=4))
    exact = RegularGraphSimilarity(ExactSimilarityTracker())
    for a, b, is_insert in events:
        if is_insert:
            sketched.add_edge(a, b)
            exact.add_edge(a, b)
        else:
            sketched.remove_edge(a, b)
            exact.remove_edge(a, b)
    print(f"friendship graph: {num_people} people, {exact.live_edge_count} live friendships "
          f"after {len(events)} events")

    targets = [0, COMMUNITY_SIZE, 2 * COMMUNITY_SIZE]
    for target in targets:
        friends = exact.sketch.item_set(target)
        candidates = [
            person
            for person in range(num_people)
            if person != target and person not in friends
        ]
        scored = [
            (sketched.estimate_common_neighbours(target, person), person)
            for person in candidates
        ]
        scored.sort(reverse=True)
        rows = []
        for score, person in scored[:NUM_SUGGESTIONS]:
            rows.append(
                [
                    person,
                    f"{score:.1f}",
                    f"{exact.estimate_common_neighbours(target, person):.0f}",
                    "same" if person // COMMUNITY_SIZE == target // COMMUNITY_SIZE else "other",
                ]
            )
        print()
        print(f"friend suggestions for person {target} "
              f"(community {target // COMMUNITY_SIZE}, {exact.degree(target)} friends)")
        print(render_table(
            ["suggested person", "common friends (VOS)", "common friends (exact)", "community"],
            rows,
        ))


if __name__ == "__main__":
    main()
